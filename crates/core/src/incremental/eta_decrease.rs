//! Algorithm 3: the `η` Decreasing algorithm (Section IV-A).
//!
//! When event `e_j`'s participation upper bound drops from `η_j` to
//! `η'_j < n_j` (its current attendance), the minimum possible negative
//! impact is `n_j − η'_j` removals. To keep utility maximal the
//! algorithm removes the attendees with the **smallest** utility scores
//! for `e_j`, then lets the freed users pick up other events with the
//! "methods in \[4\]" — the utility-aware filler restricted to those
//! users (which only *adds* events, so the negative impact stays
//! minimal).

use crate::model::{EventId, Instance, UserId};
use crate::plan::Plan;
use crate::solver::filler;

/// Applies the `η`-decrease repair in place. `instance` must already
/// carry the new bound. Returns the users whose plans lost `event`.
pub fn eta_decrease(instance: &Instance, plan: &mut Plan, event: EventId) -> Vec<UserId> {
    let new_upper = instance.event(event).upper;
    let n = plan.attendance(event);
    if n <= new_upper {
        return Vec::new(); // Lines 1–2: no update needed.
    }

    // Lines 4–5: sort attendees by utility descending, drop the tail.
    let mut attendees = plan.attendees(event);
    attendees.sort_by(|&a, &b| {
        instance
            .utility(b, event)
            .total_cmp(&instance.utility(a, event))
            .then(a.cmp(&b))
    });
    let removed: Vec<UserId> = attendees.split_off(new_upper as usize);
    for &u in &removed {
        plan.remove(u, event);
    }

    // Lines 6–8: let the freed users attend other events.
    filler::fill_to_upper(instance, plan, Some(&removed));
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Event, TimeInterval, User, UtilityMatrix};
    use epplan_geo::Point;

    /// 3 users attending e0; a spare event e1 exists.
    fn setup() -> (Instance, Plan) {
        let users = vec![
            User::new(Point::new(0.0, 0.0), 100.0),
            User::new(Point::new(0.0, 1.0), 100.0),
            User::new(Point::new(0.0, 2.0), 100.0),
        ];
        let events = vec![
            Event::new(Point::new(1.0, 0.0), 0, 3, TimeInterval::new(0, 59)),
            Event::new(Point::new(1.0, 1.0), 0, 3, TimeInterval::new(60, 119)),
        ];
        let utilities = UtilityMatrix::from_rows(vec![
            vec![0.9, 0.5],
            vec![0.6, 0.8],
            vec![0.3, 0.7],
        ]).unwrap();
        let instance = Instance::new(users, events, utilities).unwrap();
        let mut plan = Plan::for_instance(&instance);
        for u in instance.user_ids() {
            plan.add(u, EventId(0));
        }
        (instance, plan)
    }

    #[test]
    fn noop_when_bound_still_satisfied() {
        let (mut instance, mut plan) = setup();
        instance.set_event_bounds(EventId(0), 0, 3);
        let before = plan.clone();
        let removed = eta_decrease(&instance, &mut plan, EventId(0));
        assert!(removed.is_empty());
        assert_eq!(plan, before);
    }

    #[test]
    fn removes_smallest_utility_attendees() {
        let (mut instance, mut plan) = setup();
        instance.set_event_bounds(EventId(0), 0, 1);
        let removed = eta_decrease(&instance, &mut plan, EventId(0));
        // Utilities to e0: u0 0.9, u1 0.6, u2 0.3 → keep u0.
        assert_eq!(removed, vec![UserId(1), UserId(2)]);
        assert_eq!(plan.attendance(EventId(0)), 1);
        assert!(plan.contains(UserId(0), EventId(0)));
    }

    #[test]
    fn freed_users_pick_up_other_events() {
        let (mut instance, mut plan) = setup();
        instance.set_event_bounds(EventId(0), 0, 1);
        eta_decrease(&instance, &mut plan, EventId(0));
        // u1 and u2 can now also attend e1 (no conflict, budget fine).
        assert!(plan.contains(UserId(1), EventId(1)));
        assert!(plan.contains(UserId(2), EventId(1)));
        assert!(plan.validate(&instance).hard_ok());
    }

    #[test]
    fn dif_equals_paper_minimum() {
        let (mut instance, mut plan) = setup();
        let old = plan.clone();
        instance.set_event_bounds(EventId(0), 0, 1);
        eta_decrease(&instance, &mut plan, EventId(0));
        // dif(P, P') = n_j − η'_j = 3 − 1 = 2.
        assert_eq!(crate::plan::dif(&old, &plan), 2);
    }

    #[test]
    fn untouched_users_keep_their_plans() {
        let (mut instance, mut plan) = setup();
        plan.add(UserId(0), EventId(1));
        instance.set_event_bounds(EventId(0), 0, 2);
        eta_decrease(&instance, &mut plan, EventId(0));
        assert!(plan.contains(UserId(0), EventId(0)));
        assert!(plan.contains(UserId(0), EventId(1)));
    }
}
