//! Algorithm 4: the `ξ` Increasing algorithm (Section IV-B).
//!
//! When event `e_j`'s participation lower bound rises from `ξ_j` to
//! `ξ'_j > n_j`, the algorithm transfers `ξ'_j − n_j` users to `e_j`
//! from events that have spare participants (`n_{j'} > ξ_{j'}`),
//! choosing transfers by largest utility delta
//! `Δ = μ(u_i, e_j) − μ(u_i, e_{j'})` (heap order), then lets the moved
//! users pick up further events with the methods of \[4\]. The negative
//! impact is `ξ'_j − n_j` — each transferred user loses exactly one
//! event — which is minimal.

use crate::model::{EventId, Instance, UserId};
use crate::plan::Plan;
use crate::solver::filler;

use super::repair::transfer_users_to;

/// Outcome of the `ξ`-increase repair.
#[derive(Debug, Clone)]
pub struct XiIncreaseOutcome {
    /// Users transferred to the event (each lost one source event).
    pub moved: Vec<UserId>,
    /// Whether the new lower bound was actually reached; `false` means
    /// the event still falls short (reported as shortfall upstream).
    pub reached: bool,
}

/// Applies the `ξ`-increase repair in place. `instance` must already
/// carry the new bound.
pub fn xi_increase(instance: &Instance, plan: &mut Plan, event: EventId) -> XiIncreaseOutcome {
    let new_lower = instance.event(event).lower;
    if plan.attendance(event) >= new_lower {
        return XiIncreaseOutcome {
            moved: Vec::new(),
            reached: true,
        }; // Lines 1–2.
    }
    // Lines 3–16: Δ-heap transfers.
    let result = transfer_users_to(instance, plan, event, new_lower);
    // Lines 17–19: moved users may attend additional events.
    if !result.moved.is_empty() {
        filler::fill_to_upper(instance, plan, Some(&result.moved));
    }
    XiIncreaseOutcome {
        moved: result.moved,
        reached: result.reached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Event, TimeInterval, User, UtilityMatrix};
    use epplan_geo::Point;

    /// Paper-like setup: e1 holds spare users that e0 can poach.
    fn setup() -> (Instance, Plan) {
        let users = vec![
            User::new(Point::new(0.0, 0.0), 100.0),
            User::new(Point::new(0.0, 1.0), 100.0),
            User::new(Point::new(0.0, 2.0), 100.0),
        ];
        let events = vec![
            Event::new(Point::new(1.0, 0.0), 0, 3, TimeInterval::new(0, 59)),
            Event::new(Point::new(1.0, 1.0), 0, 3, TimeInterval::new(60, 119)),
        ];
        let utilities = UtilityMatrix::from_rows(vec![
            vec![0.7, 0.8], // Δ to e0 = −0.1
            vec![0.4, 0.6], // Δ to e0 = −0.2
            vec![0.2, 0.5], // Δ to e0 = −0.3
        ]).unwrap();
        let instance = Instance::new(users, events, utilities).unwrap();
        let mut plan = Plan::for_instance(&instance);
        for u in instance.user_ids() {
            plan.add(u, EventId(1));
        }
        (instance, plan)
    }

    #[test]
    fn noop_when_already_satisfied() {
        let (mut instance, mut plan) = setup();
        instance.set_event_bounds(EventId(1), 2, 3); // n=3 ≥ ξ'=2
        let before = plan.clone();
        let out = xi_increase(&instance, &mut plan, EventId(1));
        assert!(out.reached);
        assert!(out.moved.is_empty());
        assert_eq!(plan, before);
    }

    #[test]
    fn transfers_largest_delta_first() {
        let (mut instance, mut plan) = setup();
        instance.set_event_bounds(EventId(0), 1, 3);
        let out = xi_increase(&instance, &mut plan, EventId(0));
        assert!(out.reached);
        // u0 has the largest Δ (−0.1): moved. (The step-2 refill may
        // later restore e1 to u0 — additions are free — so only the
        // *move* itself is asserted here.)
        assert_eq!(out.moved, vec![UserId(0)]);
        assert!(plan.contains(UserId(0), EventId(0)));
    }

    #[test]
    fn moved_users_refill_their_plans() {
        let (mut instance, mut plan) = setup();
        instance.set_event_bounds(EventId(0), 1, 3);
        xi_increase(&instance, &mut plan, EventId(0));
        // After moving to e0 (0–59), u0 can *also* re-attend e1
        // (60–119, no conflict, η=3 has room) via the filler — exactly
        // the paper's "check if the users can attend other events".
        assert!(plan.contains(UserId(0), EventId(1)));
        assert!(plan.validate(&instance).hard_ok());
    }

    #[test]
    fn respects_source_lower_bounds() {
        let (mut instance, mut plan) = setup();
        instance.set_event_bounds(EventId(1), 3, 3); // e1 may not lose anyone
        instance.set_event_bounds(EventId(0), 1, 3);
        let out = xi_increase(&instance, &mut plan, EventId(0));
        assert!(!out.reached);
        assert_eq!(plan.attendance(EventId(1)), 3);
    }

    #[test]
    fn dif_is_number_of_moves() {
        let (mut instance, mut plan) = setup();
        let old = plan.clone();
        instance.set_event_bounds(EventId(0), 2, 3);
        let out = xi_increase(&instance, &mut plan, EventId(0));
        assert!(out.reached);
        assert_eq!(crate::plan::dif(&old, &plan), 0, "refill restored e1");
        // Without the refill the theoretical dif would equal the number
        // of moves; the filler only adds events so dif can only shrink.
        assert_eq!(out.moved.len(), 2);
    }

    #[test]
    fn unreachable_bound_reports_shortfall() {
        let (mut instance, mut plan) = setup();
        // Nobody else exists to transfer: demand more than the user base.
        instance.set_event_bounds(EventId(0), 3, 3);
        instance.set_utility(UserId(2), EventId(0), 0.0);
        let out = xi_increase(&instance, &mut plan, EventId(0));
        assert!(!out.reached);
        assert!(plan.attendance(EventId(0)) < 3);
    }
}
