//! The Incremental Event Planning (IEP) problem — Section IV.
//!
//! The paper identifies the atomic operations an EBSN faces (utility
//! and budget changes from users; new events, bound changes, time and
//! location changes from organizers) and shows that three repair
//! algorithms suffice:
//!
//! * [`AtomicOp::EtaDecrease`] → Algorithm 3 ([`eta_decrease`]);
//! * [`AtomicOp::XiIncrease`] → Algorithm 4 ([`xi_increase`]);
//! * [`AtomicOp::TimeChange`] → Algorithm 5 ([`time_change`]);
//!
//! with every other operation reducible to them (Section IV's opening
//! discussion: "solving for all other atomic operations can be reduced
//! to one of these"). [`IncrementalPlanner::apply`] performs the
//! dispatch, mutating a **clone** of the instance and the plan, and
//! reports the negative impact `dif(P, P′)` together with the new
//! global utility.

mod eta_decrease;
mod exact_iep;
pub(crate) mod repair;
mod time_change;
mod xi_increase;

pub use eta_decrease::eta_decrease;
pub use exact_iep::{exact_iep, ExactIepResult};
pub use time_change::{time_change, TimeChangeOutcome};
pub use xi_increase::{xi_increase, XiIncreaseOutcome};

use crate::model::{Event, EventId, Instance, TimeInterval, UserId};
use crate::plan::{dif, Plan};
use crate::solver::filler;
use epplan_geo::Point;
use epplan_solve::{BudgetGuard, SolveBudget, SolveError};
use serde::{Deserialize, Serialize};

const STAGE: &str = "core.incremental";

/// A single atomic change to the EBSN (Section IV's taxonomy).
///
/// Serializes as internally-tagged JSON (`{"op": "eta_decrease", ...}`)
/// so operation streams can be stored and replayed (see the `epplan`
/// CLI's `apply` subcommand).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum AtomicOp {
    /// Event `η_j` decreased (core Algorithm 3).
    EtaDecrease {
        /// Affected event.
        event: EventId,
        /// New upper bound `η'_j`.
        new_upper: u32,
    },
    /// Event `η_j` increased (reduction: pure capacity fill).
    EtaIncrease {
        /// Affected event.
        event: EventId,
        /// New upper bound.
        new_upper: u32,
    },
    /// Event `ξ_j` increased (core Algorithm 4).
    XiIncrease {
        /// Affected event.
        event: EventId,
        /// New lower bound `ξ'_j`.
        new_lower: u32,
    },
    /// Event `ξ_j` decreased (reduction: no plan change needed).
    XiDecrease {
        /// Affected event.
        event: EventId,
        /// New lower bound.
        new_lower: u32,
    },
    /// Event start/end time changed (core Algorithm 5).
    TimeChange {
        /// Affected event.
        event: EventId,
        /// New holding window.
        new_time: TimeInterval,
    },
    /// Event venue moved (reduction onto Algorithm 5's repair: the
    /// removal criterion is budget instead of conflict).
    LocationChange {
        /// Affected event.
        event: EventId,
        /// New venue.
        new_location: Point,
    },
    /// A new event posted (reduction: "increasing `e_j`'s participation
    /// lower bound from 0", i.e. Algorithm 4, then capacity fill).
    NewEvent {
        /// The event to add.
        event: Event,
        /// Per-user utilities for it (one entry per existing user).
        utilities: Vec<f64>,
    },
    /// A user's utility for an event changed (e.g. availability shifts
    /// make `μ` drop to 0 — the paper's Jessica example).
    UtilityChange {
        /// Affected user.
        user: UserId,
        /// Affected event.
        event: EventId,
        /// New score in `[0, 1]`.
        new_utility: f64,
    },
    /// A user's travel budget changed (the bad-weather example).
    BudgetChange {
        /// Affected user.
        user: UserId,
        /// New budget `B'_i ≥ 0`.
        new_budget: f64,
    },
    /// An event's admission fee changed (the Section VII cost
    /// extension). A fee hike can push attendees over budget, so the
    /// repair mirrors a location change: shed attendees who can no
    /// longer afford the event, then refill toward the bounds.
    FeeChange {
        /// Affected event.
        event: EventId,
        /// New fee `≥ 0`.
        new_fee: f64,
    },
}

/// An [`AtomicOp`] tagged with a strictly monotonic stream id — the
/// replay and idempotency unit of durable operation streams (the
/// `epplan serve` write-ahead log, `datagen::opstream` JSONL files).
///
/// Ids are assigned by the producer and must strictly increase along a
/// stream ([`validate_sequence`]); gaps are fine. A consumer that
/// remembers the last id it applied can replay any suffix of the
/// stream without double-applying an operation.
///
/// Serializes as `{"id": 17, "op": {"op": "eta_decrease", ...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequencedOp {
    /// Strictly monotonic stream id (producer-assigned, 1-based by
    /// convention; 0 is reserved for "nothing applied yet").
    pub id: u64,
    /// The operation itself.
    pub op: AtomicOp,
}

impl SequencedOp {
    /// Tags `op` with stream id `id`.
    pub fn new(id: u64, op: AtomicOp) -> Self {
        SequencedOp { id, op }
    }
}

/// Validates the id discipline of a sequenced stream: ids must
/// strictly increase (duplicates and reorderings are both rejected)
/// and must not use the reserved id 0. Run this on any deserialized
/// stream before replaying it — a duplicate id replayed against a
/// write-ahead log would double-apply its operation.
pub fn validate_sequence(ops: &[SequencedOp]) -> Result<(), SolveError<()>> {
    let mut last: u64 = 0;
    for (k, sop) in ops.iter().enumerate() {
        if sop.id == 0 {
            return Err(SolveError::bad_input(
                STAGE,
                format!("operation {k} uses reserved stream id 0"),
            ));
        }
        if sop.id <= last {
            let what = if sop.id == last { "duplicates" } else { "precedes" };
            return Err(SolveError::bad_input(
                STAGE,
                format!("operation {k} id {} {what} previous id {last}", sop.id),
            ));
        }
        last = sop.id;
    }
    Ok(())
}

/// Result of applying an atomic operation.
#[derive(Debug, Clone)]
pub struct IncrementalOutcome {
    /// The updated instance (the operation applied).
    pub instance: Instance,
    /// The repaired plan `P′`.
    pub plan: Plan,
    /// Negative impact `dif(P, P′)`.
    pub dif: usize,
    /// Global utility of `P′` under the updated instance.
    pub utility: f64,
    /// Events whose lower bound could not be restored.
    pub shortfall: Vec<EventId>,
}

/// Result of applying a whole batch of atomic operations.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The instance after every operation.
    pub instance: Instance,
    /// The final repaired plan.
    pub plan: Plan,
    /// `dif` of the final plan against the **original** plan — the net
    /// negative impact users perceive once the dust settles.
    pub net_dif: usize,
    /// Per-operation `dif` values, as the paper's repeated-run
    /// treatment would report them (their sum can exceed `net_dif`
    /// when later operations restore earlier losses).
    pub step_difs: Vec<usize>,
    /// Final global utility.
    pub utility: f64,
    /// Events below their lower bound after the batch.
    pub shortfall: Vec<EventId>,
}

/// Stateless IEP dispatcher.
///
/// ```
/// use epplan_core::incremental::{AtomicOp, IncrementalPlanner};
/// use epplan_core::model::{EventId, InstanceBuilder, TimeInterval};
/// use epplan_core::plan::Plan;
/// use epplan_core::solver::{GepcSolver, GreedySolver};
/// use epplan_geo::Point;
///
/// let mut b = InstanceBuilder::new();
/// let u0 = b.user(Point::new(0.0, 0.0), 10.0);
/// let u1 = b.user(Point::new(0.0, 1.0), 10.0);
/// let e = b.event(Point::new(1.0, 0.0), 0, 2, TimeInterval::new(540, 600));
/// b.utility(u0, e, 0.9);
/// b.utility(u1, e, 0.4);
/// let instance = b.build();
/// let plan = GreedySolver::seeded(1).solve(&instance).plan;
/// assert_eq!(plan.attendance(e), 2);
///
/// // The venue shrinks to a single seat: the lower-utility attendee
/// // is dropped, with the minimal negative impact of 1.
/// let out = IncrementalPlanner.apply(
///     &instance,
///     &plan,
///     &AtomicOp::EtaDecrease { event: e, new_upper: 1 },
/// );
/// assert_eq!(out.dif, 1);
/// assert!(out.plan.contains(u0, e));
/// assert!(!out.plan.contains(u1, e));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct IncrementalPlanner;

impl IncrementalPlanner {
    /// Checks that `op` is well-formed against `instance`: ids in
    /// range, finite non-negative money amounts, utilities in `[0, 1]`
    /// (NaN rejected), non-inverted intervals and bounds. Deserialized
    /// operation streams can violate any of these.
    fn validate_op(instance: &Instance, op: &AtomicOp) -> Result<(), SolveError<()>> {
        let bad = |msg: String| Err(SolveError::bad_input(STAGE, msg));
        let check_event = |e: EventId| {
            if e.index() >= instance.n_events() {
                bad(format!("event {e} out of range ({} events)", instance.n_events()))
            } else {
                Ok(())
            }
        };
        let check_user = |u: UserId| {
            if u.index() >= instance.n_users() {
                bad(format!("user {u} out of range ({} users)", instance.n_users()))
            } else {
                Ok(())
            }
        };
        let check_utility = |v: f64| {
            if !(0.0..=1.0).contains(&v) {
                bad(format!("utility {v} outside [0, 1]"))
            } else {
                Ok(())
            }
        };
        let check_money = |what: &str, v: f64| {
            if !v.is_finite() || v < 0.0 {
                bad(format!("{what} {v} must be finite and non-negative"))
            } else {
                Ok(())
            }
        };
        let check_time = |t: TimeInterval| {
            if t.start >= t.end {
                bad(format!("empty or inverted interval [{}, {})", t.start, t.end))
            } else {
                Ok(())
            }
        };
        let check_point = |p: Point| {
            if !p.x.is_finite() || !p.y.is_finite() {
                bad(format!("non-finite location ({}, {})", p.x, p.y))
            } else {
                Ok(())
            }
        };
        match op {
            // The four bound operations encode their direction in the
            // tag, and the repair algorithms rely on it: a mislabeled
            // `EtaIncrease` that actually lowers η would skip Algorithm
            // 3's participant trim and leave the event overfull.
            AtomicOp::EtaDecrease { event, new_upper } => {
                check_event(*event)?;
                if *new_upper > instance.event(*event).upper {
                    return bad(format!(
                        "eta_decrease raises η for {event}: {} > {}",
                        new_upper,
                        instance.event(*event).upper
                    ));
                }
                Ok(())
            }
            AtomicOp::EtaIncrease { event, new_upper } => {
                check_event(*event)?;
                if *new_upper < instance.event(*event).upper {
                    return bad(format!(
                        "eta_increase lowers η for {event}: {} < {}",
                        new_upper,
                        instance.event(*event).upper
                    ));
                }
                Ok(())
            }
            AtomicOp::XiIncrease { event, new_lower } => {
                check_event(*event)?;
                if *new_lower < instance.event(*event).lower {
                    return bad(format!(
                        "xi_increase lowers ξ for {event}: {} < {}",
                        new_lower,
                        instance.event(*event).lower
                    ));
                }
                Ok(())
            }
            AtomicOp::XiDecrease { event, new_lower } => {
                check_event(*event)?;
                if *new_lower > instance.event(*event).lower {
                    return bad(format!(
                        "xi_decrease raises ξ for {event}: {} > {}",
                        new_lower,
                        instance.event(*event).lower
                    ));
                }
                Ok(())
            }
            AtomicOp::TimeChange { event, new_time } => {
                check_event(*event)?;
                check_time(*new_time)
            }
            AtomicOp::LocationChange { event, new_location } => {
                check_event(*event)?;
                check_point(*new_location)
            }
            AtomicOp::NewEvent { event, utilities } => {
                if utilities.len() != instance.n_users() {
                    return bad(format!(
                        "new event carries {} utilities for {} users",
                        utilities.len(),
                        instance.n_users()
                    ));
                }
                utilities.iter().try_for_each(|&v| check_utility(v))?;
                if event.lower > event.upper {
                    return bad(format!(
                        "lower bound {} exceeds upper bound {}",
                        event.lower, event.upper
                    ));
                }
                check_time(event.time)?;
                check_point(event.location)?;
                check_money("admission fee", event.fee)
            }
            AtomicOp::UtilityChange { user, event, new_utility } => {
                check_user(*user)?;
                check_event(*event)?;
                check_utility(*new_utility)
            }
            AtomicOp::BudgetChange { user, new_budget } => {
                check_user(*user)?;
                check_money("travel budget", *new_budget)
            }
            AtomicOp::FeeChange { event, new_fee } => {
                check_event(*event)?;
                check_money("admission fee", *new_fee)
            }
        }
    }

    /// Fallible variant of [`IncrementalPlanner::apply`]: rejects
    /// malformed operations with a typed `BadInput` error instead of
    /// panicking deep inside the model layer. The error carries the
    /// unchanged `(instance, plan)` as a partial outcome, so callers
    /// that prefer degradation over failure can keep planning.
    pub fn try_apply(
        &self,
        instance: &Instance,
        plan: &Plan,
        op: &AtomicOp,
    ) -> Result<IncrementalOutcome, SolveError<IncrementalOutcome>> {
        if let Err(e) = Self::validate_op(instance, op) {
            return Err(e
                .discard_partial()
                .with_partial(Self::unchanged_outcome(instance, plan)));
        }
        // Deterministic fault injection in front of the repair dispatch
        // (serial entry point, hit count thread-invariant). The error
        // degrades to the unchanged plan like any other IEP failure.
        if let Some(action) = epplan_fault::point("core.iep.apply") {
            return Err(SolveError::from_fault(STAGE, "core.iep.apply", action)
                .with_partial(Self::unchanged_outcome(instance, plan)));
        }
        Ok(self.apply_validated(instance, plan, op))
    }

    /// [`IncrementalPlanner::try_apply`] under a per-operation
    /// [`SolveBudget`]: the serving layer's entry point. The budget is
    /// enforced at the operation granularity — one guard tick up front
    /// (so iteration caps and pre-expired zero allowances trip
    /// deterministically before any work) and a deadline check after
    /// the repair. A tripped budget returns the usual retryable
    /// `BudgetExhausted` error carrying the **unchanged** state as the
    /// partial, never a half-repaired plan.
    pub fn try_apply_budgeted(
        &self,
        instance: &Instance,
        plan: &Plan,
        op: &AtomicOp,
        budget: SolveBudget,
    ) -> Result<IncrementalOutcome, SolveError<IncrementalOutcome>> {
        let mut guard = BudgetGuard::new(budget);
        if let Err(e) = guard.tick(STAGE) {
            return Err(e
                .discard_partial()
                .with_partial(Self::unchanged_outcome(instance, plan)));
        }
        let out = self.try_apply(instance, plan, op)?;
        match guard.check_deadline(STAGE) {
            Ok(()) => Ok(out),
            // The repair finished but blew the deadline: report the
            // exhaustion, offer the unchanged pre-op state — the repair
            // result must not leak past a broken budget contract.
            Err(e) => Err(e
                .discard_partial()
                .with_partial(Self::unchanged_outcome(instance, plan))),
        }
    }

    /// The pure state transition of `op` on the instance alone — no
    /// plan repair, no fault points, no budget. This is the single
    /// source of truth for "what the world looks like after `op`";
    /// [`IncrementalPlanner::apply`] composes it with the repair
    /// algorithms, and the `epplan serve` full-re-solve fallback uses
    /// it directly when a repair fails and the plan is rebuilt from
    /// scratch. `op` must already be validated.
    pub fn apply_to_instance(instance: &Instance, op: &AtomicOp) -> Instance {
        let mut inst = instance.clone();
        match op {
            AtomicOp::EtaDecrease { event, new_upper }
            | AtomicOp::EtaIncrease { event, new_upper } => {
                let lower = inst.event(*event).lower.min(*new_upper);
                inst.set_event_bounds(*event, lower, *new_upper);
            }
            AtomicOp::XiIncrease { event, new_lower } => {
                let upper = inst.event(*event).upper.max(*new_lower);
                inst.set_event_bounds(*event, *new_lower, upper);
            }
            AtomicOp::XiDecrease { event, new_lower } => {
                let upper = inst.event(*event).upper;
                inst.set_event_bounds(*event, *new_lower, upper);
            }
            AtomicOp::TimeChange { event, new_time } => {
                inst.set_event_time(*event, *new_time);
            }
            AtomicOp::LocationChange { event, new_location } => {
                inst.set_event_location(*event, *new_location);
            }
            AtomicOp::NewEvent { event, utilities } => {
                inst.add_event(*event, utilities);
            }
            AtomicOp::UtilityChange { user, event, new_utility } => {
                inst.set_utility(*user, *event, *new_utility);
            }
            AtomicOp::BudgetChange { user, new_budget } => {
                inst.set_budget(*user, *new_budget);
            }
            AtomicOp::FeeChange { event, new_fee } => {
                inst.set_event_fee(*event, *new_fee);
            }
        }
        inst
    }

    /// The identity outcome: nothing applied, nothing changed.
    fn unchanged_outcome(instance: &Instance, plan: &Plan) -> IncrementalOutcome {
        IncrementalOutcome {
            instance: instance.clone(),
            plan: plan.clone(),
            dif: 0,
            utility: plan.total_utility(instance),
            shortfall: instance
                .event_ids()
                .filter(|&e| plan.attendance(e) < instance.event(e).lower)
                .collect(),
        }
    }

    /// Applies `op` to `(instance, plan)` and repairs the plan with the
    /// appropriate algorithm. Neither input is modified; the updated
    /// copies are returned in the outcome. Malformed operations degrade
    /// to the unchanged plan (see [`IncrementalPlanner::try_apply`] for
    /// the typed rejection).
    pub fn apply(
        &self,
        instance: &Instance,
        plan: &Plan,
        op: &AtomicOp,
    ) -> IncrementalOutcome {
        match self.try_apply(instance, plan, op) {
            Ok(out) => out,
            Err(e) => e
                .partial
                .unwrap_or_else(|| Self::unchanged_outcome(instance, plan)),
        }
    }

    fn apply_validated(
        &self,
        instance: &Instance,
        plan: &Plan,
        op: &AtomicOp,
    ) -> IncrementalOutcome {
        // Per-operation repair cost: the measurement the incremental
        // tables (paper §V/§VI) are built from.
        let mut sp = epplan_obs::span("iep.apply");
        sp.add_iters(1);
        epplan_obs::counter_add("iep.ops", 1);
        // The instance transition is shared with the serving layer's
        // full-re-solve fallback; only the repair dispatch lives here.
        let inst = Self::apply_to_instance(instance, op);
        let mut new_plan = plan.clone();

        match op {
            AtomicOp::EtaDecrease { event, .. } => {
                eta_decrease(&inst, &mut new_plan, *event);
            }
            AtomicOp::EtaIncrease { event, .. } => {
                // Pure addition: fill the new capacity, no negative
                // impact possible.
                repair::fill_event_to_upper(&inst, &mut new_plan, *event);
            }
            AtomicOp::XiIncrease { event, .. } => {
                xi_increase(&inst, &mut new_plan, *event);
            }
            AtomicOp::XiDecrease { .. } => {
                // The old plan remains feasible: nothing to repair.
            }
            AtomicOp::TimeChange { event, .. } => {
                time_change(&inst, &mut new_plan, *event);
            }
            AtomicOp::LocationChange { event, .. } => {
                // Same repair loop: the removal pass inside
                // `time_change` re-checks both conflicts and budgets,
                // and only budgets can newly fail here.
                time_change(&inst, &mut new_plan, *event);
            }
            AtomicOp::NewEvent { .. } => {
                // `apply_to_instance` appended the event, so it carries
                // the highest id.
                let id = EventId((inst.n_events() - 1) as u32);
                new_plan.resize_events(inst.n_events());
                // Reduction per the paper: raise the lower bound from 0
                // (Algorithm 4), then fill spare capacity to η.
                if inst.event(id).lower > 0 {
                    xi_increase(&inst, &mut new_plan, id);
                }
                repair::fill_event_to_upper(&inst, &mut new_plan, id);
            }
            AtomicOp::UtilityChange {
                user,
                event,
                new_utility,
            } => {
                if *new_utility <= 0.0 && new_plan.contains(*user, *event) {
                    // The user can no longer attend (the paper's
                    // availability example): remove, restore the lower
                    // bound if broken, and let the user refill.
                    new_plan.remove(*user, *event);
                    if new_plan.attendance(*event) < inst.event(*event).lower {
                        xi_increase(&inst, &mut new_plan, *event);
                    }
                    filler::fill_to_upper(&inst, &mut new_plan, Some(&[*user]));
                } else if *new_utility > 0.0 && !new_plan.contains(*user, *event) {
                    // Higher interest: take the event if it simply fits.
                    if new_plan.attendance(*event) < inst.event(*event).upper
                        && inst.can_attend_with(*user, new_plan.user_plan(*user), *event)
                    {
                        new_plan.add(*user, *event);
                    }
                }
            }
            AtomicOp::FeeChange { event, new_fee } => {
                let old_fee = instance.event(*event).fee;
                if *new_fee > old_fee {
                    // Same repair loop as a venue move: the removal pass
                    // re-checks budgets (now including the higher fee)
                    // and refills toward ξ/η.
                    time_change(&inst, &mut new_plan, *event);
                } else if *new_fee < old_fee {
                    // Cheaper event: purely additive refill.
                    repair::fill_event_to_upper(&inst, &mut new_plan, *event);
                }
            }
            AtomicOp::BudgetChange { user, new_budget } => {
                let old_budget = instance.user(*user).budget;
                if *new_budget < old_budget {
                    let dropped = repair::shed_to_budget(&inst, &mut new_plan, *user);
                    for e in dropped {
                        if new_plan.attendance(e) < inst.event(e).lower {
                            xi_increase(&inst, &mut new_plan, e);
                        }
                    }
                    // A cheaper event might still fit the shrunken
                    // budget.
                    filler::fill_to_upper(&inst, &mut new_plan, Some(&[*user]));
                } else if *new_budget > old_budget {
                    filler::fill_to_upper(&inst, &mut new_plan, Some(&[*user]));
                }
            }
        }

        let utility = new_plan.total_utility(&inst);
        let shortfall = inst
            .event_ids()
            .filter(|&e| new_plan.attendance(e) < inst.event(e).lower)
            .collect();
        IncrementalOutcome {
            dif: dif(plan, &new_plan),
            utility,
            shortfall,
            instance: inst,
            plan: new_plan,
        }
    }

    /// Applies a sequence of atomic operations one at a time — the
    /// paper's treatment for multiple changes ("the case where multiple
    /// atomic operations take place is treated here as running the
    /// incremental version multiple times", Section II-B).
    ///
    /// [`BatchOutcome::step_difs`] holds each run's individual `dif`;
    /// [`BatchOutcome::net_dif`] compares the final plan against the
    /// *original* one, which is what users ultimately experience.
    pub fn apply_batch(
        &self,
        instance: &Instance,
        plan: &Plan,
        ops: &[AtomicOp],
    ) -> BatchOutcome {
        let mut inst = instance.clone();
        let mut cur = plan.clone();
        let mut step_difs = Vec::with_capacity(ops.len());
        for op in ops {
            let out = self.apply(&inst, &cur, op);
            step_difs.push(out.dif);
            inst = out.instance;
            cur = out.plan;
        }
        let utility = cur.total_utility(&inst);
        let shortfall = inst
            .event_ids()
            .filter(|&e| cur.attendance(e) < inst.event(e).lower)
            .collect();
        // The original plan may cover fewer events than the final one
        // (NewEvent ops); `dif` handles that asymmetry.
        let net_dif = dif(plan, &cur);
        BatchOutcome {
            instance: inst,
            plan: cur,
            net_dif,
            step_difs,
            utility,
            shortfall,
        }
    }

    /// Fallible variant of [`IncrementalPlanner::apply_batch`]: stops at
    /// the first malformed operation with a typed `BadInput` error. The
    /// error's partial carries the batch outcome of every operation
    /// applied *before* the bad one, so the valid prefix is not lost.
    pub fn try_apply_batch(
        &self,
        instance: &Instance,
        plan: &Plan,
        ops: &[AtomicOp],
    ) -> Result<BatchOutcome, SolveError<BatchOutcome>> {
        let mut inst = instance.clone();
        let mut cur = plan.clone();
        let mut step_difs = Vec::with_capacity(ops.len());
        let mut failure: Option<SolveError<()>> = None;
        for (k, op) in ops.iter().enumerate() {
            match self.try_apply(&inst, &cur, op) {
                Ok(out) => {
                    step_difs.push(out.dif);
                    inst = out.instance;
                    cur = out.plan;
                }
                Err(e) => {
                    failure = Some(SolveError::new(
                        e.kind,
                        e.stage,
                        format!("operation {k}: {}", e.message),
                    ));
                    break;
                }
            }
        }
        let utility = cur.total_utility(&inst);
        let shortfall = inst
            .event_ids()
            .filter(|&e| cur.attendance(e) < inst.event(e).lower)
            .collect();
        let net_dif = dif(plan, &cur);
        let outcome = BatchOutcome {
            instance: inst,
            plan: cur,
            net_dif,
            step_difs,
            utility,
            shortfall,
        };
        match failure {
            None => Ok(outcome),
            Some(e) => Err(e.discard_partial().with_partial(outcome)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{User, UtilityMatrix};
    use crate::solver::{GepcSolver, GreedySolver};

    /// A 4-user, 3-event instance with room to maneuver.
    fn setup() -> (Instance, Plan) {
        let users = vec![
            User::new(Point::new(0.0, 0.0), 100.0),
            User::new(Point::new(0.0, 1.0), 100.0),
            User::new(Point::new(0.0, 2.0), 100.0),
            User::new(Point::new(0.0, 3.0), 100.0),
        ];
        let events = vec![
            Event::new(Point::new(1.0, 0.0), 1, 3, TimeInterval::new(0, 59)),
            Event::new(Point::new(1.0, 1.0), 1, 4, TimeInterval::new(60, 119)),
            Event::new(Point::new(1.0, 2.0), 0, 2, TimeInterval::new(120, 179)),
        ];
        let utilities = UtilityMatrix::from_rows(vec![
            vec![0.9, 0.6, 0.3],
            vec![0.7, 0.8, 0.5],
            vec![0.5, 0.4, 0.9],
            vec![0.3, 0.7, 0.6],
        ]).unwrap();
        let instance = Instance::new(users, events, utilities).unwrap();
        let plan = GreedySolver::seeded(11).solve(&instance).plan;
        (instance, plan)
    }

    #[test]
    fn all_ops_preserve_hard_feasibility() {
        let (instance, plan) = setup();
        let planner = IncrementalPlanner;
        let ops = vec![
            AtomicOp::EtaDecrease {
                event: EventId(0),
                new_upper: 1,
            },
            AtomicOp::EtaIncrease {
                event: EventId(2),
                new_upper: 4,
            },
            AtomicOp::XiIncrease {
                event: EventId(2),
                new_lower: 2,
            },
            AtomicOp::XiDecrease {
                event: EventId(0),
                new_lower: 0,
            },
            AtomicOp::TimeChange {
                event: EventId(0),
                new_time: TimeInterval::new(60, 119),
            },
            AtomicOp::LocationChange {
                event: EventId(1),
                new_location: Point::new(5.0, 5.0),
            },
            AtomicOp::NewEvent {
                event: Event::new(Point::new(2.0, 2.0), 1, 3, TimeInterval::new(200, 260)),
                utilities: vec![0.5, 0.6, 0.7, 0.8],
            },
            AtomicOp::UtilityChange {
                user: UserId(0),
                event: EventId(0),
                new_utility: 0.0,
            },
            AtomicOp::BudgetChange {
                user: UserId(1),
                new_budget: 2.5,
            },
        ];
        for op in ops {
            let out = planner.apply(&instance, &plan, &op);
            let v = out.plan.validate(&out.instance);
            assert!(v.hard_ok(), "op {op:?} broke the plan: {:?}", v.violations);
        }
    }

    #[test]
    fn eta_decrease_dif_is_minimal() {
        let (instance, plan) = setup();
        let n0 = plan.attendance(EventId(0));
        assert!(n0 >= 2, "test premise: e0 has ≥ 2 attendees");
        let out = IncrementalPlanner.apply(
            &instance,
            &plan,
            &AtomicOp::EtaDecrease {
                event: EventId(0),
                new_upper: 1,
            },
        );
        assert_eq!(out.dif, (n0 - 1) as usize);
    }

    #[test]
    fn xi_decrease_never_changes_plan() {
        let (instance, plan) = setup();
        let out = IncrementalPlanner.apply(
            &instance,
            &plan,
            &AtomicOp::XiDecrease {
                event: EventId(1),
                new_lower: 0,
            },
        );
        assert_eq!(out.dif, 0);
        assert_eq!(out.plan, plan);
    }

    #[test]
    fn eta_increase_only_adds() {
        let (instance, plan) = setup();
        let out = IncrementalPlanner.apply(
            &instance,
            &plan,
            &AtomicOp::EtaIncrease {
                event: EventId(2),
                new_upper: 4,
            },
        );
        assert_eq!(out.dif, 0);
        assert!(out.utility >= plan.total_utility(&instance) - 1e-9);
    }

    #[test]
    fn new_event_gets_filled() {
        let (instance, plan) = setup();
        let out = IncrementalPlanner.apply(
            &instance,
            &plan,
            &AtomicOp::NewEvent {
                event: Event::new(Point::new(0.5, 1.5), 2, 4, TimeInterval::new(300, 360)),
                utilities: vec![0.9, 0.9, 0.9, 0.9],
            },
        );
        let new_id = EventId(3);
        assert!(out.plan.attendance(new_id) >= 2, "lower bound met");
        assert!(out.shortfall.is_empty());
        // Nothing needed to be taken away: the event is conflict-free.
        assert_eq!(out.dif, 0);
    }

    #[test]
    fn utility_drop_to_zero_removes_assignment() {
        let (instance, plan) = setup();
        // Find a user attending e1.
        let victim = plan.attendees(EventId(1))[0];
        let out = IncrementalPlanner.apply(
            &instance,
            &plan,
            &AtomicOp::UtilityChange {
                user: victim,
                event: EventId(1),
                new_utility: 0.0,
            },
        );
        assert!(!out.plan.contains(victim, EventId(1)));
        assert!(out.dif >= 1);
        assert!(out.plan.validate(&out.instance).hard_ok());
    }

    #[test]
    fn budget_increase_only_adds() {
        let (mut instance, _) = setup();
        instance.set_budget(UserId(0), 2.0); // tight
        let plan = GreedySolver::seeded(11).solve(&instance).plan;
        let out = IncrementalPlanner.apply(
            &instance,
            &plan,
            &AtomicOp::BudgetChange {
                user: UserId(0),
                new_budget: 100.0,
            },
        );
        assert_eq!(out.dif, 0);
        assert!(out.utility >= plan.total_utility(&instance) - 1e-9);
    }

    #[test]
    fn budget_decrease_sheds_and_repairs() {
        let (instance, plan) = setup();
        let u = UserId(1);
        assert!(!plan.user_plan(u).is_empty());
        let out = IncrementalPlanner.apply(
            &instance,
            &plan,
            &AtomicOp::BudgetChange {
                user: u,
                new_budget: 0.0,
            },
        );
        assert!(out.plan.user_plan(u).is_empty());
        assert!(out.plan.validate(&out.instance).hard_ok());
        assert_eq!(out.dif, plan.user_plan(u).len());
    }

    #[test]
    fn batch_application_equals_sequential() {
        let (instance, plan) = setup();
        let ops = vec![
            AtomicOp::EtaDecrease {
                event: EventId(0),
                new_upper: 1,
            },
            AtomicOp::XiIncrease {
                event: EventId(2),
                new_lower: 2,
            },
            AtomicOp::BudgetChange {
                user: UserId(1),
                new_budget: 3.0,
            },
        ];
        let planner = IncrementalPlanner;
        let batch = planner.apply_batch(&instance, &plan, &ops);
        // Manual sequential application must agree.
        let mut inst = instance.clone();
        let mut cur = plan.clone();
        for op in &ops {
            let out = planner.apply(&inst, &cur, op);
            inst = out.instance;
            cur = out.plan;
        }
        assert_eq!(batch.plan, cur);
        assert_eq!(batch.instance, inst);
        assert_eq!(batch.step_difs.len(), 3);
        assert!(batch.plan.validate(&batch.instance).hard_ok());
        // Net dif never exceeds the sum of step difs.
        assert!(batch.net_dif <= batch.step_difs.iter().sum());
    }

    #[test]
    fn empty_batch_is_identity() {
        let (instance, plan) = setup();
        let batch = IncrementalPlanner.apply_batch(&instance, &plan, &[]);
        assert_eq!(batch.plan, plan);
        assert_eq!(batch.net_dif, 0);
        assert!(batch.step_difs.is_empty());
    }

    #[test]
    fn fee_hike_sheds_unaffordable_attendees() {
        let (mut instance, _) = setup();
        // Make budgets tight enough that a fee hike matters.
        for u in instance.user_ids() {
            instance.set_budget(u, 6.0);
        }
        let plan = GreedySolver::seeded(11).solve(&instance).plan;
        let e = EventId(0);
        let out = IncrementalPlanner.apply(
            &instance,
            &plan,
            &AtomicOp::FeeChange {
                event: e,
                new_fee: 5.0,
            },
        );
        let v = out.plan.validate(&out.instance);
        assert!(v.hard_ok(), "{:?}", v.violations);
        // Every remaining attendee can still afford route + fee.
        for u in out.plan.attendees(e) {
            assert!(
                out.plan.travel_cost(&out.instance, u)
                    <= out.instance.user(u).budget + 1e-9
            );
        }
    }

    #[test]
    fn fee_drop_only_adds() {
        let (mut instance, _) = setup();
        instance.set_event_fee(EventId(2), 150.0); // above every budget
        let plan = GreedySolver::seeded(11).solve(&instance).plan;
        assert_eq!(plan.attendance(EventId(2)), 0);
        let out = IncrementalPlanner.apply(
            &instance,
            &plan,
            &AtomicOp::FeeChange {
                event: EventId(2),
                new_fee: 0.0,
            },
        );
        assert_eq!(out.dif, 0);
        assert!(out.plan.attendance(EventId(2)) > 0, "refilled once affordable");
        assert!(out.plan.validate(&out.instance).hard_ok());
    }

    #[test]
    fn malformed_ops_are_rejected_with_bad_input() {
        let (instance, plan) = setup();
        let planner = IncrementalPlanner;
        let bad_ops = vec![
            AtomicOp::EtaDecrease {
                event: EventId(99),
                new_upper: 1,
            },
            AtomicOp::UtilityChange {
                user: UserId(50),
                event: EventId(0),
                new_utility: 0.5,
            },
            AtomicOp::UtilityChange {
                user: UserId(0),
                event: EventId(0),
                new_utility: f64::NAN,
            },
            AtomicOp::UtilityChange {
                user: UserId(0),
                event: EventId(0),
                new_utility: 1.5,
            },
            AtomicOp::BudgetChange {
                user: UserId(0),
                new_budget: -3.0,
            },
            AtomicOp::FeeChange {
                event: EventId(0),
                new_fee: f64::INFINITY,
            },
            AtomicOp::TimeChange {
                event: EventId(0),
                new_time: TimeInterval { start: 90, end: 30 },
            },
            AtomicOp::LocationChange {
                event: EventId(0),
                new_location: Point::new(f64::NAN, 0.0),
            },
            AtomicOp::NewEvent {
                event: Event::new(Point::new(0.0, 0.0), 0, 1, TimeInterval::new(0, 9)),
                utilities: vec![0.5], // wrong arity for 4 users
            },
        ];
        for op in bad_ops {
            let err = planner.try_apply(&instance, &plan, &op).unwrap_err();
            assert_eq!(
                err.kind,
                epplan_solve::FailureKind::BadInput,
                "op {op:?} should be BadInput"
            );
            // The partial outcome is the unchanged plan.
            let partial = err.partial.expect("unchanged outcome travels as partial");
            assert_eq!(partial.plan, plan);
            assert_eq!(partial.dif, 0);
            // And the lossy entry point degrades instead of panicking.
            let out = planner.apply(&instance, &plan, &op);
            assert_eq!(out.plan, plan);
        }
    }

    #[test]
    fn batch_stops_at_first_bad_op_keeping_prefix() {
        let (instance, plan) = setup();
        let ops = vec![
            AtomicOp::EtaDecrease {
                event: EventId(0),
                new_upper: 1,
            },
            AtomicOp::BudgetChange {
                user: UserId(9),
                new_budget: 1.0,
            },
            AtomicOp::XiDecrease {
                event: EventId(1),
                new_lower: 0,
            },
        ];
        let err = IncrementalPlanner
            .try_apply_batch(&instance, &plan, &ops)
            .unwrap_err();
        assert_eq!(err.kind, epplan_solve::FailureKind::BadInput);
        assert!(err.message.contains("operation 1"), "{}", err.message);
        let partial = err.partial.expect("prefix outcome travels as partial");
        // Only the first op was applied.
        assert_eq!(partial.step_difs.len(), 1);
        assert!(partial.plan.validate(&partial.instance).hard_ok());
    }

    /// Every op kind, well-formed against the [`setup`] instance.
    fn one_of_each_op() -> Vec<AtomicOp> {
        vec![
            AtomicOp::EtaDecrease { event: EventId(0), new_upper: 1 },
            AtomicOp::EtaIncrease { event: EventId(2), new_upper: 4 },
            AtomicOp::XiIncrease { event: EventId(2), new_lower: 2 },
            AtomicOp::XiDecrease { event: EventId(0), new_lower: 0 },
            AtomicOp::TimeChange {
                event: EventId(0),
                new_time: TimeInterval::new(60, 119),
            },
            AtomicOp::LocationChange {
                event: EventId(1),
                new_location: Point::new(5.0, 5.0),
            },
            AtomicOp::NewEvent {
                event: Event::new(Point::new(2.0, 2.0), 1, 3, TimeInterval::new(200, 260)),
                utilities: vec![0.5, 0.6, 0.7, 0.8],
            },
            AtomicOp::UtilityChange {
                user: UserId(0),
                event: EventId(0),
                new_utility: 0.0,
            },
            AtomicOp::BudgetChange { user: UserId(1), new_budget: 2.5 },
            AtomicOp::FeeChange { event: EventId(0), new_fee: 5.0 },
        ]
    }

    #[test]
    fn apply_to_instance_agrees_with_full_apply() {
        // The pure instance transition and the repair entry point must
        // describe the same post-op world, for every op kind.
        let (instance, plan) = setup();
        for op in one_of_each_op() {
            let inst_only = IncrementalPlanner::apply_to_instance(&instance, &op);
            let full = IncrementalPlanner.apply(&instance, &plan, &op);
            assert_eq!(inst_only, full.instance, "divergence for {op:?}");
        }
    }

    #[test]
    fn sequence_validation_rejects_duplicates_reorderings_and_zero() {
        let op = AtomicOp::XiDecrease { event: EventId(0), new_lower: 0 };
        let seq = |ids: &[u64]| -> Vec<SequencedOp> {
            ids.iter().map(|&id| SequencedOp::new(id, op.clone())).collect()
        };
        assert!(validate_sequence(&seq(&[1, 2, 3])).is_ok());
        assert!(validate_sequence(&seq(&[1, 5, 90])).is_ok(), "gaps are fine");
        assert!(validate_sequence(&[]).is_ok());
        for (ids, needle) in [
            (&[1u64, 2, 2][..], "duplicates"),
            (&[3, 1][..], "precedes"),
            (&[0, 1][..], "reserved"),
        ] {
            let err = validate_sequence(&seq(ids)).unwrap_err();
            assert_eq!(err.kind, epplan_solve::FailureKind::BadInput);
            assert!(err.message.contains(needle), "{ids:?}: {}", err.message);
        }
    }

    #[test]
    fn sequenced_op_round_trips_json() {
        let sop = SequencedOp::new(
            17,
            AtomicOp::EtaDecrease { event: EventId(3), new_upper: 1 },
        );
        let json = serde_json::to_string(&sop).unwrap();
        assert!(json.contains("\"id\""), "{json}");
        assert!(json.contains("eta_decrease"), "{json}");
        let back: SequencedOp = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sop);
    }

    #[test]
    fn budgeted_apply_enforces_and_reports_retryable_exhaustion() {
        let (instance, plan) = setup();
        let op = AtomicOp::EtaDecrease { event: EventId(0), new_upper: 1 };
        // A pre-expired allowance trips before any repair work, with
        // the unchanged state as the partial.
        let err = IncrementalPlanner
            .try_apply_budgeted(
                &instance,
                &plan,
                &op,
                epplan_solve::SolveBudget::from_time_limit(std::time::Duration::ZERO),
            )
            .unwrap_err();
        assert_eq!(err.kind, epplan_solve::FailureKind::BudgetExhausted);
        assert!(err.is_retryable());
        let partial = err.partial.expect("unchanged outcome travels as partial");
        assert_eq!(partial.plan, plan);
        // An ample budget matches the unbudgeted path exactly.
        let out = IncrementalPlanner
            .try_apply_budgeted(&instance, &plan, &op, epplan_solve::SolveBudget::UNLIMITED)
            .expect("unlimited budget cannot trip");
        let base = IncrementalPlanner.apply(&instance, &plan, &op);
        assert_eq!(out.plan, base.plan);
        assert_eq!(out.instance, base.instance);
    }

    #[test]
    fn inputs_are_not_mutated() {
        let (instance, plan) = setup();
        let inst_before = instance.clone();
        let plan_before = plan.clone();
        let _ = IncrementalPlanner.apply(
            &instance,
            &plan,
            &AtomicOp::EtaDecrease {
                event: EventId(0),
                new_upper: 0,
            },
        );
        assert_eq!(instance, inst_before);
        assert_eq!(plan, plan_before);
    }
}
