//! Property tests for the end-to-end GAP pipeline against the exact
//! branch-and-bound optimum on small random instances.
//!
//! Shmoys–Tardos guarantees: whenever the instance has *any* complete
//! feasible assignment, (a) the pipeline also produces a complete
//! assignment, (b) its cost is at most the optimum (cost ≤ fractional
//! optimum ≤ integral optimum), and (c) every machine's load is at most
//! `T_i + max_j p_{i,j}`.

use epplan_gap::{exact, FractionalMethod, GapConfig, GapInstance, GapSolver};
use proptest::prelude::*;

fn st_load_ok(inst: &GapInstance, sol: &epplan_gap::GapSolution) -> bool {
    let mut max_p = vec![0.0f64; inst.n_machines()];
    for (j, &mi) in sol.assignment.iter().enumerate() {
        if let Some(i) = mi {
            max_p[i] = max_p[i].max(inst.time(i, j));
        }
    }
    sol.loads
        .iter()
        .enumerate()
        .all(|(i, &l)| l <= inst.capacity(i) + max_p[i] + 1e-6)
}

fn arb_instance() -> impl Strategy<Value = GapInstance> {
    (2usize..4, 2usize..7, 0u64..1_000_000).prop_map(|(m, n, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let costs: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let times: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| rng.gen_range(0.2..2.0)).collect())
            .collect();
        let caps: Vec<f64> = (0..m).map(|_| rng.gen_range(0.5..4.0)).collect();
        let mut inst = GapInstance::from_matrices(costs, times, caps);
        // Sprinkle forbidden pairs.
        for i in 0..m {
            for j in 0..n {
                if rng.gen_bool(0.15) {
                    inst.forbid(i, j);
                }
            }
        }
        inst
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn st_guarantees_hold(inst in arb_instance()) {
        let solver = GapSolver::new(GapConfig {
            method: FractionalMethod::Simplex,
            ..Default::default()
        });
        let sol = solver.solve(&inst).unwrap();
        let opt = exact::branch_and_bound(&inst).ok();

        prop_assert!(st_load_ok(&inst, &sol));

        if let Some(opt) = opt {
            // (a) completeness whenever a complete assignment exists.
            prop_assert!(sol.is_complete(),
                "pipeline incomplete on a feasible instance");
            // (b) cost never exceeds the exact optimum (the LP bound).
            prop_assert!(sol.cost <= opt.cost + 1e-6,
                "pipeline {} > optimum {}", sol.cost, opt.cost);
            // Fractional bound is a valid lower bound.
            if let Some(fc) = sol.fractional_cost {
                prop_assert!(fc <= opt.cost + 1e-6);
            }
        }
    }

    #[test]
    fn greedy_is_feasible_and_capacity_respecting(inst in arb_instance()) {
        let sol = epplan_gap::greedy::greedy_assign(&inst);
        prop_assert!(sol.within_capacity(&inst, 1.0));
        // Greedy never assigns forbidden pairs.
        for (j, &mi) in sol.assignment.iter().enumerate() {
            if let Some(i) = mi {
                prop_assert!(inst.allowed(i, j));
            }
        }
    }

    #[test]
    fn mw_pipeline_is_total_and_bounded(inst in arb_instance()) {
        let solver = GapSolver::new(GapConfig {
            method: FractionalMethod::MultiplicativeWeights,
            ..Default::default()
        });
        let sol = solver.solve(&inst).unwrap();
        prop_assert!(st_load_ok(&inst, &sol));
        for (j, &mi) in sol.assignment.iter().enumerate() {
            if let Some(i) = mi {
                prop_assert!(inst.allowed(i, j), "forbidden pair used ({i},{j})");
            }
        }
    }
}
