//! Exact GAP optimum by depth-first branch-and-bound.
//!
//! Exponential in the number of jobs; intended for the small instances
//! used in tests and in the approximation-ratio ablation experiment
//! (DESIGN.md, experiment A1). Jobs are explored in order of fewest
//! allowed machines first (fail-first), and branches are pruned with an
//! admissible lower bound: current cost plus each remaining job's
//! cheapest allowed cost (capacity ignored).

use crate::{GapInstance, GapSolution};

/// Upper limit on jobs before we refuse to run (avoids accidental
/// exponential blow-ups in benchmarks).
pub const MAX_EXACT_JOBS: usize = 24;

/// Finds a minimum-cost complete assignment, or `None` when no complete
/// assignment satisfies the capacities.
///
/// # Panics
/// Panics when the instance has more than [`MAX_EXACT_JOBS`] jobs.
pub fn branch_and_bound(inst: &GapInstance) -> Option<GapSolution> {
    assert!(
        inst.n_jobs() <= MAX_EXACT_JOBS,
        "exact solver limited to {MAX_EXACT_JOBS} jobs, got {}",
        inst.n_jobs()
    );
    let n = inst.n_jobs();
    let m = inst.n_machines();
    if n == 0 {
        return Some(GapSolution::from_assignment(inst, Vec::new()));
    }

    // Cheapest allowed cost per job (lower-bound contribution), and the
    // job order: fewest options first.
    let mut min_cost = vec![f64::INFINITY; n];
    let mut options = vec![0usize; n];
    for j in 0..n {
        for i in 0..m {
            if inst.allowed(i, j) {
                options[j] += 1;
                if inst.cost(i, j) < min_cost[j] {
                    min_cost[j] = inst.cost(i, j);
                }
            }
        }
        if options[j] == 0 {
            return None; // some job is unassignable
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&j| options[j]);
    // Suffix lower bounds over the chosen order.
    let mut suffix_lb = vec![0.0; n + 1];
    for k in (0..n).rev() {
        suffix_lb[k] = suffix_lb[k + 1] + min_cost[order[k]];
    }

    struct Ctx<'a> {
        inst: &'a GapInstance,
        order: &'a [usize],
        suffix_lb: &'a [f64],
        loads: Vec<f64>,
        assign: Vec<Option<usize>>,
        best_cost: f64,
        best: Option<Vec<Option<usize>>>,
    }

    fn dfs(ctx: &mut Ctx<'_>, depth: usize, cost: f64) {
        if cost + ctx.suffix_lb[depth] >= ctx.best_cost - 1e-12 {
            return;
        }
        if depth == ctx.order.len() {
            ctx.best_cost = cost;
            ctx.best = Some(ctx.assign.clone());
            return;
        }
        let j = ctx.order[depth];
        // Try machines in increasing cost for better pruning.
        let mut ms: Vec<usize> = ctx.inst.allowed_machines(j).collect();
        ms.sort_by(|&a, &b| ctx.inst.cost(a, j).total_cmp(&ctx.inst.cost(b, j)));
        for i in ms {
            let t = ctx.inst.time(i, j);
            if ctx.loads[i] + t <= ctx.inst.capacity(i) + 1e-12 {
                ctx.loads[i] += t;
                ctx.assign[j] = Some(i);
                dfs(ctx, depth + 1, cost + ctx.inst.cost(i, j));
                ctx.assign[j] = None;
                ctx.loads[i] -= t;
            }
        }
    }

    let mut ctx = Ctx {
        inst,
        order: &order,
        suffix_lb: &suffix_lb,
        loads: vec![0.0; m],
        assign: vec![None; n],
        best_cost: f64::INFINITY,
        best: None,
    };
    dfs(&mut ctx, 0, 0.0);
    ctx.best
        .map(|assignment| GapSolution::from_assignment(inst, assignment))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_single_pair() {
        let g = GapInstance::from_matrices(vec![vec![2.0]], vec![vec![1.0]], vec![1.0]);
        let s = branch_and_bound(&g).unwrap();
        assert_eq!(s.assignment, vec![Some(0)]);
        assert_eq!(s.cost, 2.0);
    }

    #[test]
    fn picks_global_optimum_over_greedy() {
        // Both jobs prefer machine 0, which fits only one. Greedy on
        // job order would take (m0, j0) cost 0 and be forced to pay 10
        // for j1; optimum is 2 + 0.5 = 2.5.
        let g = GapInstance::from_matrices(
            vec![vec![0.0, 0.5], vec![2.0, 10.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![1.0, 1.0],
        );
        let s = branch_and_bound(&g).unwrap();
        assert_eq!(s.cost, 2.5);
        assert_eq!(s.assignment, vec![Some(1), Some(0)]);
    }

    #[test]
    fn respects_capacity() {
        // Both jobs prefer machine 0 but it fits only one.
        let g = GapInstance::from_matrices(
            vec![vec![1.0, 1.0], vec![5.0, 5.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![1.0, 2.0],
        );
        let s = branch_and_bound(&g).unwrap();
        assert_eq!(s.cost, 6.0);
        assert!(s.within_capacity(&g, 1.0));
    }

    #[test]
    fn detects_infeasibility() {
        let g = GapInstance::from_matrices(
            vec![vec![1.0, 1.0]],
            vec![vec![1.0, 1.0]],
            vec![1.5], // two unit jobs, capacity 1.5
        );
        assert!(branch_and_bound(&g).is_none());
    }

    #[test]
    fn empty_instance() {
        let g = GapInstance::new(2, 0, vec![1.0, 1.0]);
        let s = branch_and_bound(&g).unwrap();
        assert!(s.assignment.is_empty());
        assert_eq!(s.cost, 0.0);
    }

    #[test]
    fn forbidden_pairs_block_assignment() {
        let mut g = GapInstance::from_matrices(
            vec![vec![1.0], vec![0.5]],
            vec![vec![1.0], vec![1.0]],
            vec![2.0, 2.0],
        );
        g.forbid(1, 0);
        let s = branch_and_bound(&g).unwrap();
        assert_eq!(s.assignment, vec![Some(0)]);
    }

    #[test]
    #[should_panic(expected = "exact solver limited")]
    fn too_many_jobs_panics() {
        let g = GapInstance::new(1, MAX_EXACT_JOBS + 1, vec![1.0]);
        let _ = branch_and_bound(&g);
    }
}
