//! Exact GAP optimum by depth-first branch-and-bound.
//!
//! Exponential in the number of jobs; intended for the small instances
//! used in tests and in the approximation-ratio ablation experiment
//! (DESIGN.md, experiment A1). Jobs are explored in order of fewest
//! allowed machines first (fail-first), and branches are pruned with an
//! admissible lower bound: current cost plus each remaining job's
//! cheapest allowed cost (capacity ignored).

use crate::{GapInstance, GapSolution};
use epplan_solve::{BudgetGuard, SolveBudget, SolveError};

/// Upper limit on jobs before we refuse to run (avoids accidental
/// exponential blow-ups in benchmarks). Exceeding it is a `BadInput`
/// error, not a panic.
pub const MAX_EXACT_JOBS: usize = 24;

/// Pipeline-stage label used in this solver's errors.
const STAGE: &str = "gap.exact";

/// Finds a minimum-cost complete assignment with no budget, or an
/// `Infeasible` error when no complete assignment satisfies the
/// capacities. Instances beyond [`MAX_EXACT_JOBS`] jobs (or poisoned
/// ones) are `BadInput` errors.
pub fn branch_and_bound(inst: &GapInstance) -> Result<GapSolution, SolveError<GapSolution>> {
    branch_and_bound_with_budget(inst, SolveBudget::UNLIMITED)
}

/// [`branch_and_bound`] under a [`SolveBudget`] spent one DFS node per
/// iteration. A `BudgetExhausted` error carries the best complete
/// assignment found before the cutoff, when one exists.
pub fn branch_and_bound_with_budget(
    inst: &GapInstance,
    budget: SolveBudget,
) -> Result<GapSolution, SolveError<GapSolution>> {
    if let Some(defect) = inst.defect() {
        return Err(SolveError::bad_input(
            STAGE,
            format!("malformed GAP instance: {defect}"),
        ));
    }
    if inst.n_jobs() > MAX_EXACT_JOBS {
        return Err(SolveError::bad_input(
            STAGE,
            format!(
                "exact solver limited to {MAX_EXACT_JOBS} jobs, got {}",
                inst.n_jobs()
            ),
        ));
    }
    let n = inst.n_jobs();
    let m = inst.n_machines();
    if n == 0 {
        return Ok(GapSolution::from_assignment(inst, Vec::new()));
    }

    // Cheapest allowed cost per job (lower-bound contribution), and the
    // job order: fewest options first.
    let mut min_cost = vec![f64::INFINITY; n];
    let mut options = vec![0usize; n];
    for j in 0..n {
        for (_, c, _) in inst.allowed_triples(j) {
            options[j] += 1;
            if c < min_cost[j] {
                min_cost[j] = c;
            }
        }
        if options[j] == 0 {
            return Err(SolveError::infeasible(
                STAGE,
                format!("job {j} has no machine that can take it"),
            ));
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&j| options[j]);
    // Suffix lower bounds over the chosen order.
    let mut suffix_lb = vec![0.0; n + 1];
    for k in (0..n).rev() {
        suffix_lb[k] = suffix_lb[k + 1] + min_cost[order[k]];
    }

    struct Ctx<'a> {
        inst: &'a GapInstance,
        order: &'a [usize],
        suffix_lb: &'a [f64],
        guard: BudgetGuard,
        loads: Vec<f64>,
        assign: Vec<Option<usize>>,
        best_cost: f64,
        best: Option<Vec<Option<usize>>>,
    }

    fn dfs(ctx: &mut Ctx<'_>, depth: usize, cost: f64) -> Result<(), SolveError<()>> {
        ctx.guard.tick(STAGE)?;
        if cost + ctx.suffix_lb[depth] >= ctx.best_cost - 1e-12 {
            return Ok(());
        }
        if depth == ctx.order.len() {
            ctx.best_cost = cost;
            ctx.best = Some(ctx.assign.clone());
            return Ok(());
        }
        let j = ctx.order[depth];
        // Try machines in increasing cost for better pruning.
        let mut ms: Vec<usize> = ctx.inst.allowed_machines(j).collect();
        ms.sort_by(|&a, &b| ctx.inst.cost(a, j).total_cmp(&ctx.inst.cost(b, j)));
        for i in ms {
            let t = ctx.inst.time(i, j);
            if ctx.loads[i] + t <= ctx.inst.capacity(i) + 1e-12 {
                ctx.loads[i] += t;
                ctx.assign[j] = Some(i);
                let r = dfs(ctx, depth + 1, cost + ctx.inst.cost(i, j));
                ctx.assign[j] = None;
                ctx.loads[i] -= t;
                r?;
            }
        }
        Ok(())
    }

    let mut ctx = Ctx {
        inst,
        order: &order,
        suffix_lb: &suffix_lb,
        guard: BudgetGuard::new(budget),
        loads: vec![0.0; m],
        assign: vec![None; n],
        best_cost: f64::INFINITY,
        best: None,
    };
    let search = dfs(&mut ctx, 0, 0.0);
    let best = ctx
        .best
        .map(|assignment| GapSolution::from_assignment(inst, assignment));
    match search {
        Ok(()) => best.ok_or_else(|| {
            SolveError::infeasible(STAGE, "no complete assignment fits the capacities")
        }),
        Err(e) => {
            // Budget ran out mid-search; the best complete assignment
            // found so far (if any) is a valid incumbent, just not
            // proven optimal.
            let mut out = e.discard_partial();
            if let Some(sol) = best {
                out = out.with_partial(sol);
            }
            Err(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epplan_solve::FailureKind;

    #[test]
    fn trivial_single_pair() {
        let g = GapInstance::from_matrices(vec![vec![2.0]], vec![vec![1.0]], vec![1.0]);
        let s = branch_and_bound(&g).unwrap();
        assert_eq!(s.assignment, vec![Some(0)]);
        assert_eq!(s.cost, 2.0);
    }

    #[test]
    fn picks_global_optimum_over_greedy() {
        // Both jobs prefer machine 0, which fits only one. Greedy on
        // job order would take (m0, j0) cost 0 and be forced to pay 10
        // for j1; optimum is 2 + 0.5 = 2.5.
        let g = GapInstance::from_matrices(
            vec![vec![0.0, 0.5], vec![2.0, 10.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![1.0, 1.0],
        );
        let s = branch_and_bound(&g).unwrap();
        assert_eq!(s.cost, 2.5);
        assert_eq!(s.assignment, vec![Some(1), Some(0)]);
    }

    #[test]
    fn respects_capacity() {
        // Both jobs prefer machine 0 but it fits only one.
        let g = GapInstance::from_matrices(
            vec![vec![1.0, 1.0], vec![5.0, 5.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![1.0, 2.0],
        );
        let s = branch_and_bound(&g).unwrap();
        assert_eq!(s.cost, 6.0);
        assert!(s.within_capacity(&g, 1.0));
    }

    #[test]
    fn detects_infeasibility() {
        let g = GapInstance::from_matrices(
            vec![vec![1.0, 1.0]],
            vec![vec![1.0, 1.0]],
            vec![1.5], // two unit jobs, capacity 1.5
        );
        let err = branch_and_bound(&g).unwrap_err();
        assert_eq!(err.kind, FailureKind::Infeasible);
    }

    #[test]
    fn empty_instance() {
        let g = GapInstance::new(2, 0, vec![1.0, 1.0]);
        let s = branch_and_bound(&g).unwrap();
        assert!(s.assignment.is_empty());
        assert_eq!(s.cost, 0.0);
    }

    #[test]
    fn forbidden_pairs_block_assignment() {
        let mut g = GapInstance::from_matrices(
            vec![vec![1.0], vec![0.5]],
            vec![vec![1.0], vec![1.0]],
            vec![2.0, 2.0],
        );
        g.forbid(1, 0);
        let s = branch_and_bound(&g).unwrap();
        assert_eq!(s.assignment, vec![Some(0)]);
    }

    #[test]
    fn too_many_jobs_is_bad_input() {
        let g = GapInstance::new(1, MAX_EXACT_JOBS + 1, vec![1.0]);
        let err = branch_and_bound(&g).unwrap_err();
        assert_eq!(err.kind, FailureKind::BadInput);
        assert!(err.message.contains("exact solver limited"));
    }

    #[test]
    fn budget_exhaustion_may_carry_incumbent() {
        let g = GapInstance::from_matrices(
            vec![vec![0.0, 0.5, 0.3], vec![2.0, 10.0, 1.0]],
            vec![vec![1.0; 3], vec![1.0; 3]],
            vec![2.0, 2.0],
        );
        let err =
            branch_and_bound_with_budget(&g, SolveBudget::from_iteration_cap(1)).unwrap_err();
        assert_eq!(err.kind, FailureKind::BudgetExhausted);
        // With a roomier cap the incumbent survives as a partial.
        let err =
            branch_and_bound_with_budget(&g, SolveBudget::from_iteration_cap(5)).unwrap_err();
        assert_eq!(err.kind, FailureKind::BudgetExhausted);
        if let Some(sol) = err.partial {
            assert!(sol.is_complete());
        }
    }
}
