//! Regret-based greedy GAP heuristic.
//!
//! Used as (a) the fallback when the LP pipeline cannot produce a
//! complete assignment, and (b) a fast baseline in the substrate
//! benchmarks. At each step the unassigned job with the largest
//! *regret* — the cost gap between its best and second-best remaining
//! feasible machine — is committed to its best machine. Large-regret
//! jobs are the ones that become expensive if deferred, so fixing them
//! early empirically tracks the optimum closely.

use crate::{GapInstance, GapSolution};

/// Greedily assigns jobs by maximum regret. Jobs that fit nowhere are
/// left unassigned (`None` in the returned solution).
pub fn greedy_assign(inst: &GapInstance) -> GapSolution {
    let n = inst.n_jobs();
    let m = inst.n_machines();
    let mut assign: Vec<Option<usize>> = vec![None; n];
    let mut loads = vec![0.0; m];
    let mut remaining: Vec<usize> = (0..n).collect();

    while !remaining.is_empty() {
        // For each remaining job, find its best and second-best machine
        // under current loads.
        let mut pick: Option<(usize, usize, f64)> = None; // (slot in remaining, machine, regret)
        for (slot, &j) in remaining.iter().enumerate() {
            let mut best: Option<(usize, f64)> = None;
            let mut second: Option<f64> = None;
            for (i, c, t) in inst.allowed_triples(j) {
                if loads[i] + t > inst.capacity(i) + 1e-12 {
                    continue;
                }
                match best {
                    None => best = Some((i, c)),
                    Some((_, bc)) if c < bc => {
                        second = Some(bc);
                        best = Some((i, c));
                    }
                    Some(_) => {
                        if second.is_none_or(|s| c < s) {
                            second = Some(c);
                        }
                    }
                }
            }
            if let Some((i, bc)) = best {
                // No alternative = infinite regret: must fix it now.
                let regret = second.map_or(f64::INFINITY, |s| s - bc);
                if pick.is_none_or(|(_, _, r)| regret > r) {
                    pick = Some((slot, i, regret));
                }
            }
        }
        match pick {
            Some((slot, i, _)) => {
                let j = remaining.swap_remove(slot);
                loads[i] += inst.time(i, j);
                assign[j] = Some(i);
            }
            None => break, // nothing left fits anywhere
        }
    }
    GapSolution::from_assignment(inst, assign)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_cheapest_when_capacity_ample() {
        let g = GapInstance::from_matrices(
            vec![vec![1.0, 9.0], vec![9.0, 1.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![5.0, 5.0],
        );
        let s = greedy_assign(&g);
        assert!(s.is_complete());
        assert_eq!(s.cost, 2.0);
    }

    #[test]
    fn regret_fixes_constrained_job_first() {
        // Job 1 can only go to machine 0 (regret ∞); job 0 has both.
        // If job 0 were assigned to machine 0 first, job 1 would fail.
        let mut g = GapInstance::from_matrices(
            vec![vec![0.0, 1.0], vec![1.0, 2.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![1.0, 1.0],
        );
        g.forbid(1, 1); // job 1 not allowed on machine 1
        let s = greedy_assign(&g);
        assert!(s.is_complete());
        assert_eq!(s.assignment[1], Some(0));
        assert_eq!(s.assignment[0], Some(1));
    }

    #[test]
    fn leaves_unfittable_jobs_unassigned() {
        let g = GapInstance::from_matrices(
            vec![vec![1.0, 1.0, 1.0]],
            vec![vec![1.0, 1.0, 1.0]],
            vec![2.0],
        );
        let s = greedy_assign(&g);
        assert_eq!(s.unassigned_jobs().len(), 1);
        assert!(s.within_capacity(&g, 1.0));
    }

    #[test]
    fn capacity_never_violated() {
        let g = GapInstance::from_matrices(
            vec![vec![1.0, 2.0, 3.0, 4.0], vec![4.0, 3.0, 2.0, 1.0]],
            vec![vec![2.0, 2.0, 2.0, 2.0], vec![2.0, 2.0, 2.0, 2.0]],
            vec![4.0, 4.0],
        );
        let s = greedy_assign(&g);
        assert!(s.within_capacity(&g, 1.0));
        assert!(s.is_complete());
    }

    #[test]
    fn empty_instance() {
        let g = GapInstance::new(0, 0, vec![]);
        let s = greedy_assign(&g);
        assert!(s.assignment.is_empty());
    }

    #[test]
    fn near_optimal_on_easy_instance() {
        let g = GapInstance::from_matrices(
            vec![vec![1.0, 4.0, 2.0], vec![2.0, 1.0, 3.0]],
            vec![vec![1.0, 2.0, 1.5], vec![2.0, 1.0, 1.0]],
            vec![2.5, 2.0],
        );
        let greedy = greedy_assign(&g);
        let exact = crate::exact::branch_and_bound(&g).unwrap();
        assert!(greedy.cost >= exact.cost - 1e-9);
        assert!(greedy.is_complete());
    }
}
