//! Shmoys–Tardos rounding of a fractional GAP solution.
//!
//! The classical scheme from *An approximation algorithm for the
//! generalized assignment problem* (Shmoys & Tardos, Math. Prog. 1993),
//! cited as \[6\] by the paper:
//!
//! 1. for each machine `i`, create `k_i = ⌈Σ_j x_{i,j}⌉` unit-capacity
//!    **slots**;
//! 2. order the jobs fractionally assigned to `i` by non-increasing
//!    processing time `p_{i,j}` and pour their fractions into the slots
//!    in that order, splitting a job across two consecutive slots when
//!    it straddles a unit boundary;
//! 3. every (job, slot) contact becomes an edge of a bipartite graph
//!    with cost `c_{i,j}`; the fractional solution is, by construction,
//!    a fractional matching saturating all jobs, so an **integral**
//!    min-cost matching saturating all jobs exists and is found with
//!    `epplan-flow`;
//! 4. assigning each job to its matched slot's machine yields cost at
//!    most the fractional cost and machine load at most
//!    `T_i + max_j p_{i,j}` (< 2·T_i after the `p ≤ T` preprocessing).
//!
//! If the matching layer nonetheless reports some job unplaceable
//! (float drift can perturb the certificate), that job falls back to
//! its highest-fraction machine rather than aborting; a job with no
//! fractional mass anywhere simply stays unassigned and is reported via
//! [`GapSolution::unassigned_jobs`].

use crate::{FractionalSolution, GapInstance, GapSolution};
use epplan_flow::min_cost_assignment_with_budget;
use epplan_solve::{FailureKind, SolveBudget, SolveError};

const EPS: f64 = 1e-9;

/// Rounds `frac` to an integral assignment with no budget. Jobs in
/// `frac.unassigned` stay unassigned; every other job is matched.
///
/// Returns the integral solution with `fractional_cost` set to the
/// cost of `frac` (the lower bound used in the paper's approximation
/// analysis).
pub fn round_shmoys_tardos(
    inst: &GapInstance,
    frac: &FractionalSolution,
) -> Result<GapSolution, SolveError<GapSolution>> {
    round_shmoys_tardos_with_budget(inst, frac, SolveBudget::UNLIMITED)
}

/// [`round_shmoys_tardos`] under a [`SolveBudget`] spent one flow
/// augmentation per iteration. A `BudgetExhausted` error carries the
/// partially-matched integral solution as its partial artifact.
pub fn round_shmoys_tardos_with_budget(
    inst: &GapInstance,
    frac: &FractionalSolution,
    budget: SolveBudget,
) -> Result<GapSolution, SolveError<GapSolution>> {
    if let Some(defect) = inst.defect() {
        return Err(SolveError::bad_input(
            "gap.rounding",
            format!("malformed GAP instance: {defect}"),
        ));
    }
    let m = inst.n_machines();
    let n = inst.n_jobs();
    if frac.n_machines() != m || frac.n_jobs() != n {
        return Err(SolveError::bad_input(
            "gap.rounding",
            format!(
                "fractional solution is {} × {} but instance is {m} × {n}",
                frac.n_machines(),
                frac.n_jobs()
            ),
        ));
    }

    let mut sp = epplan_obs::span("gap.rounding");

    // Jobs that carry fractional mass. The reverse map (job id → index
    // in `active`) is an index-keyed Vec: dense, O(1), and free of the
    // hash-order hazards the determinism contract bans.
    let active: Vec<usize> = (0..n).filter(|&j| frac.job_mass(j) > 0.5).collect();
    let mut job_slot_index = vec![usize::MAX; n];
    for (k, &j) in active.iter().enumerate() {
        job_slot_index[j] = k;
    }

    // Gather every (machine, job, fraction) contact job-major (support
    // lists are machine-ascending), then stable-sort by machine: each
    // machine's run keeps ascending job order — the same scan order the
    // dense layout produced — in O(nnz log nnz) instead of O(m·n).
    let mut triples: Vec<(usize, usize, f64)> = Vec::new();
    for &j in &active {
        for &(i, v) in frac.support(j) {
            if v > EPS {
                triples.push((i as usize, j, v));
            }
        }
    }
    triples.sort_by_key(|&(i, _, _)| i);

    // Build slots machine by machine (runs of equal machine in the
    // sorted triples, ascending — the dense `0..m` order minus the
    // machines with no mass).
    let mut slot_machine: Vec<usize> = Vec::new(); // slot id → machine
    let mut edges: Vec<(usize, usize, f64)> = Vec::new(); // (job idx, slot id, cost)
    let mut pos = 0usize;
    while pos < triples.len() {
        let i = triples[pos].0;
        let mut end = pos;
        while end < triples.len() && triples[end].0 == i {
            end += 1;
        }
        let mut jobs: Vec<(usize, f64)> =
            triples[pos..end].iter().map(|&(_, j, v)| (j, v)).collect();
        pos = end;
        // Non-increasing processing time (ties by job id for determinism).
        jobs.sort_by(|a, b| {
            inst.time(i, b.0)
                .total_cmp(&inst.time(i, a.0))
                .then(a.0.cmp(&b.0))
        });
        let total: f64 = jobs.iter().map(|&(_, v)| v).sum();
        let k_i = (total - EPS).ceil().max(1.0) as usize;
        let base = slot_machine.len();
        slot_machine.extend(std::iter::repeat_n(i, k_i));

        let mut slot = 0usize;
        let mut fill = 0.0f64;
        for (j, mut v) in jobs {
            let jk = job_slot_index[j];
            while v > EPS {
                debug_assert!(slot < k_i, "slot overflow on machine {i}");
                let take = v.min(1.0 - fill);
                edges.push((jk, base + slot, inst.cost(i, j)));
                v -= take;
                fill += take;
                if fill >= 1.0 - EPS && slot + 1 < k_i {
                    slot += 1;
                    fill = 0.0;
                } else if fill >= 1.0 - EPS {
                    // Last slot exactly full; any residual v is float
                    // noise.
                    debug_assert!(v <= 1e-6, "residual mass {v}");
                    break;
                }
            }
        }
    }

    // Slot-graph size: the knob that drives the matching's cost.
    sp.add_iters(slot_machine.len() as u64);
    epplan_obs::counter_add("rounding.slots", slot_machine.len() as u64);
    epplan_obs::counter_add("rounding.edges", edges.len() as u64);

    // Deterministic fault injection in front of the matching dispatch
    // (the augmentation loop has its own `flow.mcmf.augment` site).
    if let Some(action) = epplan_fault::point("gap.rounding.match") {
        return Err(SolveError::from_fault(
            "gap.rounding",
            "gap.rounding.match",
            action,
        ));
    }
    let caps = vec![1usize; slot_machine.len()];
    let matching =
        min_cost_assignment_with_budget(active.len(), slot_machine.len(), &edges, &caps, budget);

    // Each active job's highest-fraction machine, the fallback when the
    // matching cannot place it. `None` only for a job with no mass
    // anywhere — which `active` excludes, but stay defensive.
    let fallback_machine = |j: usize| -> Option<usize> {
        frac.support(j)
            .iter()
            .filter(|&&(_, v)| v > EPS)
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(i, _)| i as usize)
    };

    let place = |left_to_right: &[usize]| -> Vec<Option<usize>> {
        let mut assignment: Vec<Option<usize>> = vec![None; n];
        for (k, &slot) in left_to_right.iter().enumerate() {
            if slot != usize::MAX {
                assignment[active[k]] = Some(slot_machine[slot]);
            }
        }
        assignment
    };

    let finish = |assignment: Vec<Option<usize>>| {
        let mut sol = GapSolution::from_assignment(inst, assignment);
        sol.fractional_cost = Some(frac.cost(inst));
        sol
    };

    match matching {
        Ok(a) => Ok(finish(place(&a.left_to_right))),
        Err(e) if e.kind == FailureKind::Infeasible => {
            // Should not happen (the fractional solution certifies a
            // saturating fractional matching), but degrade per job: keep
            // what the partial matching placed and send each unplaced
            // active job to its highest-fraction machine. Jobs with no
            // fractional support stay unassigned and surface through
            // `GapSolution::unassigned_jobs`.
            let mut assignment = match e.partial {
                Some(partial) => place(&partial.left_to_right),
                None => vec![None; n],
            };
            for &j in &active {
                if assignment[j].is_none() {
                    assignment[j] = fallback_machine(j);
                }
            }
            Ok(finish(assignment))
        }
        Err(e) if e.kind == FailureKind::BudgetExhausted => {
            let partial_assignment = match e.partial {
                Some(ref partial) => place(&partial.left_to_right),
                None => vec![None; n],
            };
            Err(e.discard_partial().with_partial(finish(partial_assignment)))
        }
        Err(e) => Err(e.discard_partial()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_relaxation;
    use crate::packing::{mw_fractional, PackingConfig};

    /// Load bound from the ST theorem: `T_i + max_{j assigned} p_{i,j}`.
    fn st_load_ok(inst: &GapInstance, sol: &GapSolution) -> bool {
        let mut max_p = vec![0.0f64; inst.n_machines()];
        for (j, &mi) in sol.assignment.iter().enumerate() {
            if let Some(i) = mi {
                max_p[i] = max_p[i].max(inst.time(i, j));
            }
        }
        sol.loads
            .iter()
            .enumerate()
            .all(|(i, &l)| l <= inst.capacity(i) + max_p[i] + 1e-6)
    }

    #[test]
    fn integral_fractional_round_trips() {
        // Already-integral fractional solution must round to itself.
        let g = GapInstance::from_matrices(
            vec![vec![1.0, 5.0], vec![5.0, 1.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![2.0, 2.0],
        );
        let x = lp_relaxation(&g).unwrap();
        let s = round_shmoys_tardos(&g, &x).unwrap();
        assert!(s.is_complete());
        assert_eq!(s.assignment, vec![Some(0), Some(1)]);
        assert!((s.cost - 2.0).abs() < 1e-7);
    }

    #[test]
    fn cost_at_most_fractional_plus_eps() {
        let g = GapInstance::from_matrices(
            vec![
                vec![0.2, 0.8, 0.4, 0.6],
                vec![0.7, 0.1, 0.9, 0.3],
                vec![0.5, 0.5, 0.2, 0.8],
            ],
            vec![
                vec![1.0, 2.0, 1.0, 2.0],
                vec![2.0, 1.0, 2.0, 1.0],
                vec![1.5, 1.5, 1.5, 1.5],
            ],
            vec![3.0, 3.0, 3.0],
        );
        let x = lp_relaxation(&g).unwrap();
        let s = round_shmoys_tardos(&g, &x).unwrap();
        assert!(s.is_complete());
        // The ST theorem: integral cost ≤ fractional cost.
        assert!(
            s.cost <= x.cost(&g) + 1e-6,
            "integral {} > fractional {}",
            s.cost,
            x.cost(&g)
        );
        assert!(st_load_ok(&g, &s));
    }

    #[test]
    fn load_bound_holds_under_pressure() {
        // Tight capacities force genuinely fractional LP solutions.
        let g = GapInstance::from_matrices(
            vec![vec![0.0, 0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0, 1.0]],
            vec![vec![1.0, 1.0, 1.0, 1.0], vec![1.0, 1.0, 1.0, 1.0]],
            vec![2.0, 2.0],
        );
        let x = lp_relaxation(&g).unwrap();
        let s = round_shmoys_tardos(&g, &x).unwrap();
        assert!(s.is_complete());
        assert!(st_load_ok(&g, &s));
    }

    #[test]
    fn works_on_mw_fractional_input() {
        let g = GapInstance::from_matrices(
            vec![vec![0.3, 0.6, 0.1], vec![0.4, 0.2, 0.9], vec![0.8, 0.5, 0.3]],
            vec![vec![1.0; 3], vec![1.0; 3], vec![1.0; 3]],
            vec![1.5, 1.5, 1.5],
        );
        let x = mw_fractional(&g, &PackingConfig::default()).unwrap();
        let s = round_shmoys_tardos(&g, &x).unwrap();
        assert!(s.is_complete());
        assert!(st_load_ok(&g, &s));
    }

    #[test]
    fn unassigned_jobs_stay_unassigned() {
        let mut g = GapInstance::from_matrices(
            vec![vec![1.0, 1.0]],
            vec![vec![1.0, 1.0]],
            vec![5.0],
        );
        g.forbid(0, 0);
        let x = lp_relaxation(&g).unwrap();
        assert_eq!(x.unassigned, vec![0]);
        let s = round_shmoys_tardos(&g, &x).unwrap();
        assert_eq!(s.assignment[0], None);
        assert_eq!(s.assignment[1], Some(0));
    }

    #[test]
    fn empty_instance() {
        let g = GapInstance::new(1, 0, vec![1.0]);
        let x = lp_relaxation(&g).unwrap();
        let s = round_shmoys_tardos(&g, &x).unwrap();
        assert!(s.assignment.is_empty());
        assert_eq!(s.cost, 0.0);
    }

    #[test]
    fn dimension_mismatch_is_bad_input() {
        let g = GapInstance::new(2, 2, vec![1.0, 1.0]);
        let x = FractionalSolution::zero(3, 2);
        let err = round_shmoys_tardos(&g, &x).unwrap_err();
        assert_eq!(err.kind, FailureKind::BadInput);
        assert_eq!(err.stage, "gap.rounding");
    }

    #[test]
    fn poisoned_instance_is_bad_input() {
        let g = GapInstance::new(2, 2, vec![-1.0, 1.0]);
        let x = FractionalSolution::zero(2, 2);
        let err = round_shmoys_tardos(&g, &x).unwrap_err();
        assert_eq!(err.kind, FailureKind::BadInput);
    }

    #[test]
    fn budget_exhaustion_carries_partial_solution() {
        let g = GapInstance::from_matrices(
            vec![vec![0.2, 0.8, 0.4], vec![0.7, 0.1, 0.9]],
            vec![vec![1.0; 3], vec![1.0; 3]],
            vec![2.0, 2.0],
        );
        let x = lp_relaxation(&g).unwrap();
        let err = round_shmoys_tardos_with_budget(&g, &x, SolveBudget::from_iteration_cap(1))
            .unwrap_err();
        assert_eq!(err.kind, FailureKind::BudgetExhausted);
        let partial = err.partial.expect("partially-matched solution");
        // At most one augmentation ran, so at most one job is placed —
        // but the artifact is still a structurally valid GapSolution.
        assert!(partial.assignment.iter().flatten().count() <= 1);
        assert!(partial.fractional_cost.is_some());
    }

    #[test]
    fn infeasible_matching_falls_back_per_job() {
        // A doctored fractional solution (sub-unit masses, as a drifted
        // MW average could produce): three active jobs with mass 0.6
        // each on one machine yield total mass 1.8 → only 2 slots, so
        // the saturating matching is infeasible. The rounder must not
        // panic: the unmatched job falls back to its highest-fraction
        // machine and every job ends up placed.
        let g = GapInstance::from_matrices(
            vec![vec![1.0, 1.0, 1.0]],
            vec![vec![1.0, 1.0, 1.0]],
            vec![5.0],
        );
        let mut x = FractionalSolution::zero(1, 3);
        for j in 0..3 {
            x.set(0, j, 0.6);
        }
        let s = round_shmoys_tardos(&g, &x).unwrap();
        for j in 0..3 {
            assert_eq!(s.assignment[j], Some(0), "job {j} dropped");
        }
    }
}
