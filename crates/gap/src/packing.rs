//! Approximate fractional GAP solver via multiplicative weights.
//!
//! The paper solves the GAP relaxation "using linear programming with
//! the relaxation method of \[5\]" (Plotkin–Shmoys–Tardos, *Fast
//! approximation algorithms for fractional packing and covering
//! problems*). This module implements the practical core of that
//! method: a Lagrangian/multiplicative-weights scheme in which
//!
//! 1. every machine capacity (a packing constraint) carries a weight
//!    `λ_i`;
//! 2. each round, an *oracle* assigns every job to the machine
//!    minimizing the penalized cost `c_{i,j} + (λ_i / T_i) · p_{i,j}`
//!    (a trivially separable subproblem — the whole point of PST);
//! 3. weights are updated multiplicatively in the direction of the
//!    observed overload, `λ_i ← λ_i · exp(η · (load_i/T_i − 1))`;
//! 4. the **average** of the per-round integral assignments is returned
//!    as the fractional solution.
//!
//! Because every round assigns each assignable job fully to exactly one
//! machine, the average has job mass exactly 1 — the structural
//! property the Shmoys–Tardos rounding needs. Per-machine fractional
//! loads converge to ≤ (1 + O(ε))·T_i when the instance is fractionally
//! feasible; small residual overload is tolerated by the rounding step,
//! whose load guarantee is additive anyway (≤ T_i + max_j p_{i,j}).
//!
//! # The candidate arena
//!
//! The oracle never touches the instance's own storage on the hot
//! path. At entry it compacts every *allowed* pair into a flat CSR
//! arena — contiguous `(machine, cost, time)` triples per candidate
//! row — so each round streams cache-line-dense slices instead of
//! striding a machine-major matrix. Sparse instances contribute one
//! row per job *group* (the ξ copies of an event share identical
//! columns, so one argmin serves them all); dense instances one row
//! per job. Rounds then cost O(candidates), not O(machines × jobs),
//! and λ updates and width scans touch only machines that appear in
//! some candidate row.
//!
//! The parallel oracle chunks the arena on candidate mass with *fixed*
//! boundaries (a pure function of the row offsets) and merges chunk
//! results in index order, so every float and every argmin is
//! bit-identical at any thread count. The inner argmin is a blocked,
//! branchless 4-lane scan whose lanes merge by `(penalty, index)` —
//! exactly the leftmost strict minimum a serial scan would pick.
//!
//! Unlike the textbook PST presentation we do not binary-search a cost
//! budget: the cost term is kept in the oracle objective directly. This
//! keeps the solver a *practical* (1+ε)-style heuristic rather than a
//! certified approximation; the exact-LP path exists for instances
//! small enough to verify (see `GapConfig::method`).

use crate::{FractionalSolution, GapInstance};
use epplan_solve::{BudgetGuard, DeadlineExceeded, SolveBudget, SolveError};

/// Candidate rows per parallel arena-build chunk.
const ARENA_MIN_CHUNK: usize = 64;

/// Target candidate entries per parallel oracle chunk. Boundaries are
/// derived from the arena offsets alone, so the chunking — and with it
/// every merged result — is independent of the worker count.
const CAND_CHUNK: usize = 4096;

/// Tuning knobs for the multiplicative-weights solver.
#[derive(Debug, Clone)]
pub struct PackingConfig {
    /// Total oracle rounds. The fractional solution averages the final
    /// `iterations − burn_in` rounds.
    pub iterations: usize,
    /// Multiplicative step size η.
    pub eta: f64,
    /// Rounds discarded before averaging begins.
    pub burn_in: usize,
    /// Early-exit: stop once the trailing average's worst relative
    /// overload drops below `1 + slack`.
    pub slack: f64,
    /// Work allowance, spent one MW round per iteration. Unlimited by
    /// default; [`crate::GapConfig`] tightens it per solve call.
    pub budget: SolveBudget,
}

impl Default for PackingConfig {
    fn default() -> Self {
        PackingConfig {
            iterations: 150,
            eta: 0.5,
            burn_in: 20,
            slack: 0.02,
            budget: SolveBudget::UNLIMITED,
        }
    }
}

/// The compacted allowed-pair arena the oracle iterates.
struct OracleArena {
    /// Row offsets into the candidate arrays (`n_rows + 1`).
    offsets: Vec<usize>,
    /// Candidate machines, ascending within each row.
    machines: Vec<u32>,
    /// Parallel to `machines`: assignment costs.
    costs: Vec<f64>,
    /// Parallel to `machines`: processing times.
    times: Vec<f64>,
    /// Job → row index (copies of one event share a row).
    job_row: Vec<u32>,
    /// Chunk boundaries in row space, balanced by candidate mass.
    bounds: Vec<usize>,
    /// Machines appearing in at least one row, ascending. λ updates and
    /// width scans touch only these.
    active: Vec<u32>,
}

impl OracleArena {
    /// Compacts the allowed pairs of `inst` into contiguous rows. The
    /// per-row content is a pure function of the instance, and rows are
    /// stitched in index order, so the arena is identical at every
    /// thread count.
    fn build(inst: &GapInstance) -> OracleArena {
        let n_rows = inst.n_candidate_rows();
        let parts = epplan_par::par_range_map(n_rows, ARENA_MIN_CHUNK, |rows| {
            let mut lens = Vec::with_capacity(rows.len());
            let mut machines = Vec::new();
            let mut costs = Vec::new();
            let mut times = Vec::new();
            for r in rows {
                let before = machines.len();
                for (i, c, t) in inst.row_allowed_triples(r) {
                    machines.push(i as u32);
                    costs.push(c);
                    times.push(t);
                }
                lens.push(machines.len() - before);
            }
            (lens, machines, costs, times)
        });
        let mut offsets = Vec::with_capacity(n_rows + 1);
        offsets.push(0usize);
        let nnz: usize = parts.iter().map(|(_, m, _, _)| m.len()).sum();
        let mut machines = Vec::with_capacity(nnz);
        let mut costs = Vec::with_capacity(nnz);
        let mut times = Vec::with_capacity(nnz);
        for (lens, m, c, t) in parts {
            for len in lens {
                offsets.push(offsets[offsets.len() - 1] + len);
            }
            machines.extend_from_slice(&m);
            costs.extend_from_slice(&c);
            times.extend_from_slice(&t);
        }
        let job_row: Vec<u32> = (0..inst.n_jobs())
            .map(|j| inst.candidate_row_of(j) as u32)
            .collect();
        let mut seen = vec![false; inst.n_machines()];
        for &i in &machines {
            seen[i as usize] = true;
        }
        let active: Vec<u32> = seen
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i as u32))
            .collect();
        let bounds = mass_bounds(&offsets, CAND_CHUNK);
        OracleArena {
            offsets,
            machines,
            costs,
            times,
            job_row,
            bounds,
            active,
        }
    }
}

/// Splits row space into chunks of roughly `target` candidates each.
/// Depends only on `offsets`, never on the worker count.
fn mass_bounds(offsets: &[usize], target: usize) -> Vec<usize> {
    let n_rows = offsets.len() - 1;
    let mut bounds = vec![0usize];
    let mut start = 0;
    while start < n_rows {
        let goal = offsets[start] + target;
        let mut end = start + 1;
        while end < n_rows && offsets[end] < goal {
            end += 1;
        }
        bounds.push(end);
        start = end;
    }
    bounds
}

/// Leftmost strict-minimum candidate of one arena row under the
/// penalties `cost + loc[machine] · time`, as a 4-lane blocked
/// branchless scan. Lane minima merge lexicographically by
/// `(penalty, index)`, which is exactly the index a serial leftmost
/// strict `<` scan returns. `None` for an empty row.
#[inline]
fn row_argmin(machines: &[u32], costs: &[f64], times: &[f64], loc: &[f64]) -> Option<usize> {
    let len = machines.len();
    let mut best = [f64::INFINITY; 4];
    let mut bidx = [usize::MAX; 4];
    let mut k = 0;
    while k + 4 <= len {
        for l in 0..4 {
            let kk = k + l;
            let pen = costs[kk] + loc[machines[kk] as usize] * times[kk];
            let take = pen < best[l];
            best[l] = if take { pen } else { best[l] };
            bidx[l] = if take { kk } else { bidx[l] };
        }
        k += 4;
    }
    // Tail folds into lane 0: its indices exceed every blocked index,
    // and strict `<` keeps earlier winners on ties.
    while k < len {
        let pen = costs[k] + loc[machines[k] as usize] * times[k];
        if pen < best[0] {
            best[0] = pen;
            bidx[0] = k;
        }
        k += 1;
    }
    let mut bp = f64::INFINITY;
    let mut bi = usize::MAX;
    for l in 0..4 {
        if bidx[l] != usize::MAX && (best[l] < bp || (best[l] == bp && bidx[l] < bi)) {
            bp = best[l];
            bi = bidx[l];
        }
    }
    (bi != usize::MAX).then_some(bi)
}

/// Runs the multiplicative-weights scheme and returns the averaged
/// fractional solution. Jobs with no allowed machine are listed in
/// [`FractionalSolution::unassigned`].
///
/// A poisoned instance is a `BadInput` error. When `cfg.budget` runs
/// out mid-scheme the `BudgetExhausted` error carries the rounds
/// averaged so far as a partial fractional solution, if any round
/// finished past burn-in.
pub fn mw_fractional(
    inst: &GapInstance,
    cfg: &PackingConfig,
) -> Result<FractionalSolution, SolveError<FractionalSolution>> {
    if let Some(defect) = inst.defect() {
        return Err(SolveError::bad_input(
            "gap.packing",
            format!("malformed GAP instance: {defect}"),
        ));
    }
    let m = inst.n_machines();
    let n = inst.n_jobs();
    let mut sp = epplan_obs::span("gap.packing");
    let mut guard = BudgetGuard::new(cfg.budget);
    let mut frac = FractionalSolution::zero(m, n);
    frac.unassigned = inst.unassignable_jobs();
    if m == 0 || n == frac.unassigned.len() {
        return Ok(frac);
    }
    let assignable_jobs = (n - frac.unassigned.len()) as u64;

    // Compact every allowed pair into the flat candidate arena the
    // oracle scans each round.
    let arena = OracleArena::build(inst);
    let n_rows = arena.offsets.len() - 1;
    let n_chunks = arena.bounds.len().saturating_sub(1);

    let inv_cap: Vec<f64> = (0..m).map(|i| 1.0 / inst.capacity(i).max(1e-12)).collect();
    let mut lambda = vec![1.0f64; m];
    // λ_i / T_i, refreshed per round for active machines only.
    let mut loc = vec![0.0f64; m];
    let mut load = vec![0.0f64; m];
    // Sum of per-round loads past burn-in; `load_sum · scale` is the
    // trailing average's load, accumulated serially per machine so the
    // convergence check is thread-count independent (and O(active)
    // instead of a fresh O(machines × jobs) scan).
    let mut load_sum = vec![0.0f64; m];
    let mut averaged_rounds = 0usize;
    let burn_in = cfg.burn_in.min(cfg.iterations.saturating_sub(1));
    // The oracle fans out across workers; the deadline flag lets the
    // wall-clock limit trip *inside* a parallel round, not just between
    // rounds.
    let deadline = guard.deadline_flag();
    if epplan_obs::metrics_enabled() {
        epplan_obs::gauge_set("packing.par.threads", epplan_par::threads() as f64);
        epplan_obs::gauge_set("packing.par.chunks", n_chunks as f64);
        epplan_obs::gauge_set("packing.arena.candidates", arena.machines.len() as f64);
    }

    for round in 0..cfg.iterations {
        let mut trip = guard.tick("gap.packing").err();
        if trip.is_none() {
            // Deterministic fault injection at the (serial) round head;
            // a fired fault is handled exactly like a budget trip, so
            // the trailing average still travels as the partial.
            if let Some(action) = epplan_fault::point("gap.packing.oracle") {
                trip = Some(SolveError::from_fault(
                    "gap.packing",
                    "gap.packing.oracle",
                    action,
                ));
            }
        }
        // The round's per-row choices (arena candidate index, or
        // usize::MAX for an empty row).
        let mut choice_row: Vec<usize> = Vec::with_capacity(n_rows);
        if trip.is_none() {
            for &i in &arena.active {
                let i = i as usize;
                loc[i] = lambda[i] * inv_cap[i];
            }
            // Oracle step, parallel over mass-balanced row chunks. The
            // boundaries are fixed and chunk results merge in index
            // order, so scheduling cannot affect the result.
            let parts: Vec<Result<Vec<usize>, DeadlineExceeded>> =
                epplan_par::par_range_map(n_chunks, 1, |chunk_range| {
                    let mut out = Vec::new();
                    for b in chunk_range {
                        deadline.poll()?;
                        for r in arena.bounds[b]..arena.bounds[b + 1] {
                            let lo = arena.offsets[r];
                            let hi = arena.offsets[r + 1];
                            let k = row_argmin(
                                &arena.machines[lo..hi],
                                &arena.costs[lo..hi],
                                &arena.times[lo..hi],
                                &loc,
                            );
                            out.push(k.map_or(usize::MAX, |k| lo + k));
                        }
                    }
                    Ok(out)
                });
            let mut tripped = false;
            for part in parts {
                match part {
                    Ok(mut v) => choice_row.append(&mut v),
                    Err(_) => {
                        tripped = true;
                        break;
                    }
                }
            }
            if tripped {
                // The flag saw the monotonic clock pass the deadline,
                // so this point check errs; the interrupted round is
                // discarded like a round the tick never admitted.
                trip = guard.check_deadline("gap.packing").err();
            }
        }
        if let Some(e) = trip {
            // The round that tripped never completed.
            let epochs = guard.iterations().saturating_sub(1);
            sp.add_iters(epochs);
            epplan_obs::counter_add("packing.epochs", epochs);
            epplan_obs::counter_add("packing.oracle_calls", epochs * assignable_jobs);
            let mut out = e.discard_partial();
            // Return whatever trailing average exists as a partial.
            if averaged_rounds > 0 {
                frac.scale(1.0 / averaged_rounds as f64);
                out = out.with_partial(frac);
            }
            return Err(out);
        }
        // Load accumulation stays serial in job order: it is O(n)
        // against the oracle's O(candidates), and summing in a fixed
        // order keeps every float bit-identical at any thread count.
        for &i in &arena.active {
            load[i as usize] = 0.0;
        }
        for j in 0..n {
            let k = choice_row[arena.job_row[j] as usize];
            if k != usize::MAX {
                load[arena.machines[k] as usize] += arena.times[k];
            }
        }
        // Weight update toward observed overload, active machines only
        // (the λ of a machine in no candidate row is never read).
        for &i in &arena.active {
            let i = i as usize;
            let ratio = load[i] * inv_cap[i];
            lambda[i] = (lambda[i] * (cfg.eta * (ratio - 1.0)).exp()).clamp(1e-6, 1e9);
        }
        if round >= burn_in {
            for j in 0..n {
                let k = choice_row[arena.job_row[j] as usize];
                if k != usize::MAX {
                    frac.add(arena.machines[k] as usize, j, 1.0);
                }
            }
            for &i in &arena.active {
                let i = i as usize;
                load_sum[i] += load[i];
            }
            averaged_rounds += 1;
            // Early exit on a converged trailing average: worst
            // load/capacity ratio of the averaged rounds.
            if averaged_rounds >= 10 && averaged_rounds.is_multiple_of(10) {
                let scale = 1.0 / averaged_rounds as f64;
                let worst = arena
                    .active
                    .iter()
                    .map(|&i| load_sum[i as usize] * scale * inv_cap[i as usize])
                    .fold(0.0f64, f64::max);
                if worst <= 1.0 + cfg.slack {
                    break;
                }
            }
        }
    }
    if averaged_rounds > 0 {
        frac.scale(1.0 / averaged_rounds as f64);
    }
    let epochs = guard.iterations();
    sp.add_iters(epochs);
    epplan_obs::counter_add("packing.epochs", epochs);
    epplan_obs::counter_add("packing.oracle_calls", epochs * assignable_jobs);
    if epplan_obs::metrics_enabled() && averaged_rounds > 0 {
        // Width of the fractional solution: worst load/capacity ratio.
        let scale = 1.0 / averaged_rounds as f64;
        let worst = arena
            .active
            .iter()
            .map(|&i| load_sum[i as usize] * scale * inv_cap[i as usize])
            .fold(0.0f64, f64::max);
        epplan_obs::gauge_set("packing.width", worst);
    }
    Ok(frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_lp_on_uncapacitated_instance() {
        // With slack capacity the optimum is "cheapest machine per job";
        // MW must find it exactly.
        let g = GapInstance::from_matrices(
            vec![vec![0.1, 0.9, 0.5], vec![0.8, 0.2, 0.6]],
            vec![vec![1.0, 1.0, 1.0], vec![1.0, 1.0, 1.0]],
            vec![10.0, 10.0],
        );
        let x = mw_fractional(&g, &PackingConfig::default()).unwrap();
        assert!(x.check(&g, 1e-7).is_ok());
        assert!((x.cost(&g) - (0.1 + 0.2 + 0.5)).abs() < 1e-6);
    }

    #[test]
    fn spreads_load_under_tight_capacity() {
        // Two identical machines, four unit jobs, capacity 2 each.
        // Any all-on-one-machine solution overloads by 2×.
        let g = GapInstance::from_matrices(
            vec![vec![0.0; 4], vec![0.0; 4]],
            vec![vec![1.0; 4], vec![1.0; 4]],
            vec![2.0, 2.0],
        );
        let cfg = PackingConfig {
            iterations: 400,
            ..Default::default()
        };
        let x = mw_fractional(&g, &cfg).unwrap();
        assert!(x.check(&g, 1e-7).is_ok());
        let loads = x.loads(&g);
        for l in loads {
            assert!(l <= 2.0 * 1.25, "load {l} far above capacity");
        }
    }

    #[test]
    fn near_lp_cost_under_capacity_pressure() {
        // Machine 0 cheap but tiny; LP optimum must push mass to m1.
        let g = GapInstance::from_matrices(
            vec![vec![0.0, 0.0], vec![1.0, 1.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![1.0, 10.0],
        );
        let lp = crate::lp_relaxation(&g).unwrap();
        let cfg = PackingConfig {
            iterations: 600,
            eta: 0.3,
            ..Default::default()
        };
        let mw = mw_fractional(&g, &cfg).unwrap();
        assert!(mw.check(&g, 1e-7).is_ok());
        // LP cost is 1.0; MW should be within a modest factor and the
        // machine-0 load within a (1+ε) overshoot.
        assert!(mw.cost(&g) <= lp.cost(&g) + 0.5, "mw={}", mw.cost(&g));
        assert!(mw.loads(&g)[0] <= 1.4);
    }

    #[test]
    fn unassignable_jobs_reported() {
        let mut g = GapInstance::from_matrices(
            vec![vec![1.0, 1.0]],
            vec![vec![1.0, 1.0]],
            vec![5.0],
        );
        g.forbid(0, 1);
        let x = mw_fractional(&g, &PackingConfig::default()).unwrap();
        assert_eq!(x.unassigned, vec![1]);
        assert!((x.job_mass(0) - 1.0).abs() < 1e-9);
        assert_eq!(x.job_mass(1), 0.0);
    }

    #[test]
    fn empty_instance() {
        let g = GapInstance::new(0, 0, vec![]);
        let x = mw_fractional(&g, &PackingConfig::default()).unwrap();
        assert_eq!(x.n_jobs(), 0);
    }

    #[test]
    fn job_mass_is_exactly_one() {
        let g = GapInstance::from_matrices(
            vec![vec![0.3, 0.7, 0.2], vec![0.6, 0.1, 0.9], vec![0.5, 0.5, 0.5]],
            vec![vec![1.0; 3], vec![1.0; 3], vec![1.0; 3]],
            vec![1.0, 1.0, 1.0],
        );
        let x = mw_fractional(&g, &PackingConfig::default()).unwrap();
        for j in 0..3 {
            assert!((x.job_mass(j) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_and_dense_layouts_agree_bitwise() {
        // Two copies of one event (identical columns) plus one other
        // job, built dense and as a shared-row sparse instance: the MW
        // scheme must produce the exact same fractional solution.
        let dense = GapInstance::from_matrices(
            vec![vec![0.2, 0.2, 0.7], vec![0.5, 0.5, 0.1]],
            vec![vec![1.0, 1.0, 2.0], vec![1.5, 1.5, 1.0]],
            vec![2.0, 3.0],
        );
        let sparse = GapInstance::from_group_candidates(
            2,
            vec![2.0, 3.0],
            vec![0, 0, 1],
            &[
                vec![(0, 0.2, 1.0), (1, 0.5, 1.5)],
                vec![(0, 0.7, 2.0), (1, 0.1, 1.0)],
            ],
        );
        let cfg = PackingConfig {
            iterations: 60,
            ..Default::default()
        };
        let xd = mw_fractional(&dense, &cfg).unwrap();
        let xs = mw_fractional(&sparse, &cfg).unwrap();
        for j in 0..3 {
            assert_eq!(xd.support(j), xs.support(j), "job {j}");
        }
    }

    #[test]
    fn mass_bounds_cover_rows_exactly() {
        let offsets = vec![0usize, 10, 10, 4000, 4001, 9000, 9001];
        let bounds = mass_bounds(&offsets, 4096);
        assert_eq!(*bounds.first().unwrap(), 0);
        assert_eq!(*bounds.last().unwrap(), 6);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        // Empty arena: no chunks.
        assert_eq!(mass_bounds(&[0], 4096), vec![0]);
    }

    #[test]
    fn row_argmin_is_leftmost_strict_min() {
        let loc = vec![0.0; 8];
        // Tie on the minimum: the earlier index wins, regardless of
        // where the lanes land.
        let costs = vec![5.0, 1.0, 3.0, 1.0, 2.0, 1.0, 9.0];
        let machines: Vec<u32> = (0..7).collect();
        let times = vec![0.0; 7];
        assert_eq!(row_argmin(&machines, &costs, &times, &loc), Some(1));
        assert_eq!(row_argmin(&[], &[], &[], &loc), None);
        // Serial reference on a longer pseudo-random row.
        let costs: Vec<f64> = (0..29).map(|k| ((k * 7919) % 97) as f64).collect();
        let machines: Vec<u32> = (0..29).map(|k| k % 8).collect();
        let times: Vec<f64> = (0..29).map(|k| (k % 5) as f64).collect();
        let loc: Vec<f64> = (0..8).map(|i| 0.25 * i as f64).collect();
        let serial = (0..29)
            .map(|k| costs[k] + loc[machines[k] as usize] * times[k])
            .enumerate()
            .fold((usize::MAX, f64::INFINITY), |acc, (k, pen)| {
                if pen < acc.1 {
                    (k, pen)
                } else {
                    acc
                }
            })
            .0;
        assert_eq!(row_argmin(&machines, &costs, &times, &loc), Some(serial));
    }

    #[test]
    fn budget_exhaustion_carries_trailing_average() {
        use epplan_solve::FailureKind;
        let g = GapInstance::from_matrices(
            vec![vec![0.1, 0.9], vec![0.8, 0.2]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![10.0, 10.0],
        );
        // Cap below burn-in: no trailing average, no partial.
        let cfg = PackingConfig {
            budget: SolveBudget::from_iteration_cap(3),
            ..Default::default()
        };
        let err = mw_fractional(&g, &cfg).unwrap_err();
        assert_eq!(err.kind, FailureKind::BudgetExhausted);
        assert!(err.partial.is_none());
        // Cap past burn-in: the partial is a usable fractional solution.
        let cfg = PackingConfig {
            budget: SolveBudget::from_iteration_cap(25),
            slack: 0.0, // defeat early exit so the cap trips
            ..Default::default()
        };
        let err = mw_fractional(&g, &cfg).unwrap_err();
        assert_eq!(err.kind, FailureKind::BudgetExhausted);
        let partial = err.partial.expect("averaged rounds exist past burn-in");
        assert!(partial.check(&g, 1e-7).is_ok());
    }

    #[test]
    fn poisoned_instance_is_bad_input() {
        use epplan_solve::FailureKind;
        let g = GapInstance::new(2, 2, vec![1.0]);
        let err = mw_fractional(&g, &PackingConfig::default()).unwrap_err();
        assert_eq!(err.kind, FailureKind::BadInput);
        assert_eq!(err.stage, "gap.packing");
    }
}
