//! Approximate fractional GAP solver via multiplicative weights.
//!
//! The paper solves the GAP relaxation "using linear programming with
//! the relaxation method of \[5\]" (Plotkin–Shmoys–Tardos, *Fast
//! approximation algorithms for fractional packing and covering
//! problems*). This module implements the practical core of that
//! method: a Lagrangian/multiplicative-weights scheme in which
//!
//! 1. every machine capacity (a packing constraint) carries a weight
//!    `λ_i`;
//! 2. each round, an *oracle* assigns every job to the machine
//!    minimizing the penalized cost `c_{i,j} + λ_i · p_{i,j} / T_i`
//!    (a trivially separable subproblem — the whole point of PST);
//! 3. weights are updated multiplicatively in the direction of the
//!    observed overload, `λ_i ← λ_i · exp(η · (load_i/T_i − 1))`;
//! 4. the **average** of the per-round integral assignments is returned
//!    as the fractional solution.
//!
//! Because every round assigns each assignable job fully to exactly one
//! machine, the average has job mass exactly 1 — the structural
//! property the Shmoys–Tardos rounding needs. Per-machine fractional
//! loads converge to ≤ (1 + O(ε))·T_i when the instance is fractionally
//! feasible; small residual overload is tolerated by the rounding step,
//! whose load guarantee is additive anyway (≤ T_i + max_j p_{i,j}).
//!
//! Unlike the textbook PST presentation we do not binary-search a cost
//! budget: the cost term is kept in the oracle objective directly. This
//! keeps the solver a *practical* (1+ε)-style heuristic rather than a
//! certified approximation; the exact-LP path exists for instances
//! small enough to verify (see `GapConfig::method`).

use crate::{FractionalSolution, GapInstance};
use epplan_solve::{BudgetGuard, SolveBudget, SolveError};

/// Jobs per parallel oracle chunk: small enough to balance across
/// workers on mid-size instances, large enough to amortize spawn cost.
const ORACLE_MIN_CHUNK: usize = 64;

/// Machines per chunk in the convergence/width scans (each machine
/// costs a full pass over the jobs, so chunks can be tiny).
const WIDTH_MIN_CHUNK: usize = 2;

/// Tuning knobs for the multiplicative-weights solver.
#[derive(Debug, Clone)]
pub struct PackingConfig {
    /// Total oracle rounds. The fractional solution averages the final
    /// `iterations − burn_in` rounds.
    pub iterations: usize,
    /// Multiplicative step size η.
    pub eta: f64,
    /// Rounds discarded before averaging begins.
    pub burn_in: usize,
    /// Early-exit: stop once the trailing average's worst relative
    /// overload drops below `1 + slack`.
    pub slack: f64,
    /// Work allowance, spent one MW round per iteration. Unlimited by
    /// default; [`crate::GapConfig`] tightens it per solve call.
    pub budget: SolveBudget,
}

impl Default for PackingConfig {
    fn default() -> Self {
        PackingConfig {
            iterations: 150,
            eta: 0.5,
            burn_in: 20,
            slack: 0.02,
            budget: SolveBudget::UNLIMITED,
        }
    }
}

/// Runs the multiplicative-weights scheme and returns the averaged
/// fractional solution. Jobs with no allowed machine are listed in
/// [`FractionalSolution::unassigned`].
///
/// A poisoned instance is a `BadInput` error. When `cfg.budget` runs
/// out mid-scheme the `BudgetExhausted` error carries the rounds
/// averaged so far as a partial fractional solution, if any round
/// finished past burn-in.
pub fn mw_fractional(
    inst: &GapInstance,
    cfg: &PackingConfig,
) -> Result<FractionalSolution, SolveError<FractionalSolution>> {
    if let Some(defect) = inst.defect() {
        return Err(SolveError::bad_input(
            "gap.packing",
            format!("malformed GAP instance: {defect}"),
        ));
    }
    let m = inst.n_machines();
    let n = inst.n_jobs();
    let mut sp = epplan_obs::span("gap.packing");
    let mut guard = BudgetGuard::new(cfg.budget);
    let mut frac = FractionalSolution::zero(m, n);
    frac.unassigned = inst.unassignable_jobs();
    if m == 0 || n == frac.unassigned.len() {
        return Ok(frac);
    }
    let assignable_jobs = (n - frac.unassigned.len()) as u64;

    // Cache the allowed machines per job once: the oracle scans them
    // every round.
    let allowed: Vec<Vec<u32>> = (0..n)
        .map(|j| inst.allowed_machines(j).map(|i| i as u32).collect())
        .collect();

    let mut lambda = vec![1.0f64; m];
    let mut load = vec![0.0f64; m];
    let mut choice = vec![usize::MAX; n];
    let mut averaged_rounds = 0usize;
    let burn_in = cfg.burn_in.min(cfg.iterations.saturating_sub(1));
    // The oracle fans out across workers; the deadline flag lets the
    // wall-clock limit trip *inside* a parallel round, not just between
    // rounds.
    let deadline = guard.deadline_flag();
    if epplan_obs::metrics_enabled() {
        epplan_obs::gauge_set("packing.par.threads", epplan_par::threads() as f64);
        epplan_obs::gauge_set(
            "packing.par.chunks",
            epplan_par::chunk_count(n, ORACLE_MIN_CHUNK) as f64,
        );
    }

    for round in 0..cfg.iterations {
        let mut trip = guard.tick("gap.packing").err();
        if trip.is_none() {
            // Deterministic fault injection at the (serial) round head;
            // a fired fault is handled exactly like a budget trip, so
            // the trailing average still travels as the partial.
            if let Some(action) = epplan_fault::point("gap.packing.oracle") {
                trip = Some(SolveError::from_fault(
                    "gap.packing",
                    "gap.packing.oracle",
                    action,
                ));
            }
        }
        if trip.is_none() {
            // Oracle step, parallel over jobs: each job's penalized
            // argmin is independent and writes only its own `choice`
            // slot, so chunk scheduling cannot affect the result.
            let oracle: Result<(), epplan_solve::DeadlineExceeded> =
                epplan_par::try_par_chunks_for_each_mut(
                &mut choice,
                ORACLE_MIN_CHUNK,
                |start, chunk| {
                    deadline.poll()?;
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        let j = start + k;
                        let machines = &allowed[j];
                        if machines.is_empty() {
                            continue;
                        }
                        let mut best = f64::INFINITY;
                        let mut best_i = machines[0] as usize;
                        for &iu in machines {
                            let i = iu as usize;
                            let cap = inst.capacity(i).max(1e-12);
                            let pen =
                                inst.cost(i, j) + lambda[i] * inst.time(i, j) / cap;
                            if pen < best {
                                best = pen;
                                best_i = i;
                            }
                        }
                        *slot = best_i;
                    }
                    Ok(())
                },
            );
            if oracle.is_err() {
                // The flag saw the monotonic clock pass the deadline,
                // so this point check errs; the interrupted round is
                // discarded like a round the tick never admitted.
                trip = guard.check_deadline("gap.packing").err();
            }
        }
        if let Some(e) = trip {
            // The round that tripped never completed.
            let epochs = guard.iterations().saturating_sub(1);
            sp.add_iters(epochs);
            epplan_obs::counter_add("packing.epochs", epochs);
            epplan_obs::counter_add("packing.oracle_calls", epochs * assignable_jobs);
            let mut out = e.discard_partial();
            // Return whatever trailing average exists as a partial.
            if averaged_rounds > 0 {
                frac.scale(1.0 / averaged_rounds as f64);
                out = out.with_partial(frac);
            }
            return Err(out);
        }
        // Load accumulation stays serial in job order: it is O(n)
        // against the oracle's O(n·m), and summing in a fixed order
        // keeps every float bit-identical to the pre-parallel solver.
        load.iter_mut().for_each(|l| *l = 0.0);
        for (j, &i) in choice.iter().enumerate() {
            if i != usize::MAX {
                load[i] += inst.time(i, j);
            }
        }
        // Weight update toward observed overload.
        for i in 0..m {
            let cap = inst.capacity(i).max(1e-12);
            let ratio = load[i] / cap;
            lambda[i] = (lambda[i] * (cfg.eta * (ratio - 1.0)).exp()).clamp(1e-6, 1e9);
        }
        if round >= burn_in {
            for (j, &i) in choice.iter().enumerate() {
                if i != usize::MAX {
                    frac.add(i, j, 1.0);
                }
            }
            averaged_rounds += 1;
            // Early exit on a converged trailing average. Parallel over
            // machines; each machine's load sum runs serially over jobs
            // and `f64::max` merges exactly, so the ratio is the same
            // at every thread count.
            if averaged_rounds >= 10 && averaged_rounds.is_multiple_of(10) {
                let scale = 1.0 / averaged_rounds as f64;
                let worst = epplan_par::par_range_reduce(
                    m,
                    WIDTH_MIN_CHUNK,
                    |machines| {
                        machines
                            .map(|i| {
                                let cap = inst.capacity(i).max(1e-12);
                                let l: f64 = (0..n)
                                    .map(|j| frac.get(i, j) * inst.time(i, j))
                                    .sum();
                                l * scale / cap
                            })
                            .fold(0.0f64, f64::max)
                    },
                    f64::max,
                )
                .unwrap_or(0.0);
                if worst <= 1.0 + cfg.slack {
                    break;
                }
            }
        }
    }
    if averaged_rounds > 0 {
        frac.scale(1.0 / averaged_rounds as f64);
    }
    let epochs = guard.iterations();
    sp.add_iters(epochs);
    epplan_obs::counter_add("packing.epochs", epochs);
    epplan_obs::counter_add("packing.oracle_calls", epochs * assignable_jobs);
    if epplan_obs::metrics_enabled() {
        // Width of the fractional solution: worst load/capacity ratio.
        let worst = epplan_par::par_range_reduce(
            m,
            WIDTH_MIN_CHUNK,
            |machines| {
                machines
                    .map(|i| {
                        let cap = inst.capacity(i).max(1e-12);
                        let l: f64 =
                            (0..n).map(|j| frac.get(i, j) * inst.time(i, j)).sum();
                        l / cap
                    })
                    .fold(0.0f64, f64::max)
            },
            f64::max,
        )
        .unwrap_or(0.0);
        epplan_obs::gauge_set("packing.width", worst);
    }
    Ok(frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_lp_on_uncapacitated_instance() {
        // With slack capacity the optimum is "cheapest machine per job";
        // MW must find it exactly.
        let g = GapInstance::from_matrices(
            vec![vec![0.1, 0.9, 0.5], vec![0.8, 0.2, 0.6]],
            vec![vec![1.0, 1.0, 1.0], vec![1.0, 1.0, 1.0]],
            vec![10.0, 10.0],
        );
        let x = mw_fractional(&g, &PackingConfig::default()).unwrap();
        assert!(x.check(&g, 1e-7).is_ok());
        assert!((x.cost(&g) - (0.1 + 0.2 + 0.5)).abs() < 1e-6);
    }

    #[test]
    fn spreads_load_under_tight_capacity() {
        // Two identical machines, four unit jobs, capacity 2 each.
        // Any all-on-one-machine solution overloads by 2×.
        let g = GapInstance::from_matrices(
            vec![vec![0.0; 4], vec![0.0; 4]],
            vec![vec![1.0; 4], vec![1.0; 4]],
            vec![2.0, 2.0],
        );
        let cfg = PackingConfig {
            iterations: 400,
            ..Default::default()
        };
        let x = mw_fractional(&g, &cfg).unwrap();
        assert!(x.check(&g, 1e-7).is_ok());
        let loads = x.loads(&g);
        for l in loads {
            assert!(l <= 2.0 * 1.25, "load {l} far above capacity");
        }
    }

    #[test]
    fn near_lp_cost_under_capacity_pressure() {
        // Machine 0 cheap but tiny; LP optimum must push mass to m1.
        let g = GapInstance::from_matrices(
            vec![vec![0.0, 0.0], vec![1.0, 1.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![1.0, 10.0],
        );
        let lp = crate::lp_relaxation(&g).unwrap();
        let cfg = PackingConfig {
            iterations: 600,
            eta: 0.3,
            ..Default::default()
        };
        let mw = mw_fractional(&g, &cfg).unwrap();
        assert!(mw.check(&g, 1e-7).is_ok());
        // LP cost is 1.0; MW should be within a modest factor and the
        // machine-0 load within a (1+ε) overshoot.
        assert!(mw.cost(&g) <= lp.cost(&g) + 0.5, "mw={}", mw.cost(&g));
        assert!(mw.loads(&g)[0] <= 1.4);
    }

    #[test]
    fn unassignable_jobs_reported() {
        let mut g = GapInstance::from_matrices(
            vec![vec![1.0, 1.0]],
            vec![vec![1.0, 1.0]],
            vec![5.0],
        );
        g.forbid(0, 1);
        let x = mw_fractional(&g, &PackingConfig::default()).unwrap();
        assert_eq!(x.unassigned, vec![1]);
        assert!((x.job_mass(0) - 1.0).abs() < 1e-9);
        assert_eq!(x.job_mass(1), 0.0);
    }

    #[test]
    fn empty_instance() {
        let g = GapInstance::new(0, 0, vec![]);
        let x = mw_fractional(&g, &PackingConfig::default()).unwrap();
        assert_eq!(x.n_jobs(), 0);
    }

    #[test]
    fn job_mass_is_exactly_one() {
        let g = GapInstance::from_matrices(
            vec![vec![0.3, 0.7, 0.2], vec![0.6, 0.1, 0.9], vec![0.5, 0.5, 0.5]],
            vec![vec![1.0; 3], vec![1.0; 3], vec![1.0; 3]],
            vec![1.0, 1.0, 1.0],
        );
        let x = mw_fractional(&g, &PackingConfig::default()).unwrap();
        for j in 0..3 {
            assert!((x.job_mass(j) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn budget_exhaustion_carries_trailing_average() {
        use epplan_solve::FailureKind;
        let g = GapInstance::from_matrices(
            vec![vec![0.1, 0.9], vec![0.8, 0.2]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![10.0, 10.0],
        );
        // Cap below burn-in: no trailing average, no partial.
        let cfg = PackingConfig {
            budget: SolveBudget::from_iteration_cap(3),
            ..Default::default()
        };
        let err = mw_fractional(&g, &cfg).unwrap_err();
        assert_eq!(err.kind, FailureKind::BudgetExhausted);
        assert!(err.partial.is_none());
        // Cap past burn-in: the partial is a usable fractional solution.
        let cfg = PackingConfig {
            budget: SolveBudget::from_iteration_cap(25),
            slack: 0.0, // defeat early exit so the cap trips
            ..Default::default()
        };
        let err = mw_fractional(&g, &cfg).unwrap_err();
        assert_eq!(err.kind, FailureKind::BudgetExhausted);
        let partial = err.partial.expect("averaged rounds exist past burn-in");
        assert!(partial.check(&g, 1e-7).is_ok());
    }

    #[test]
    fn poisoned_instance_is_bad_input() {
        use epplan_solve::FailureKind;
        let g = GapInstance::new(2, 2, vec![1.0]);
        let err = mw_fractional(&g, &PackingConfig::default()).unwrap_err();
        assert_eq!(err.kind, FailureKind::BadInput);
        assert_eq!(err.stage, "gap.packing");
    }
}
