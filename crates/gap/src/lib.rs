//! Generalized Assignment Problem (GAP) solvers.
//!
//! The paper's GAP-based GEPC algorithm (Section III-A) reduces the
//! ξ-GEPC problem (with time conflicts ignored) to a GAP instance:
//! jobs are event copies, machines are users, `p_{i,j} = 2·d(u_i,e_j)`,
//! `T_i = (2+ε)·B_i`, `c_{i,j} = 1 − μ(u_i,e_j)`. It then solves the LP
//! relaxation ("linear programming with the relaxation method of
//! Plotkin–Shmoys–Tardos \[5\]") and rounds with the Shmoys–Tardos
//! slot-matching scheme \[6\], which yields cost at most the fractional
//! optimum and per-machine load at most `T_i + max_j p_{i,j}`.
//!
//! This crate implements the whole pipeline from scratch:
//!
//! * [`GapInstance`] — costs, processing times, capacities, forbidden
//!   pairs;
//! * [`lp_relaxation`] — exact fractional optimum via the `epplan-lp`
//!   simplex (small/medium instances);
//! * [`packing`] — a multiplicative-weights approximate fractional
//!   solver in the spirit of \[5\] for large instances;
//! * [`round_shmoys_tardos`] — slot construction + integral min-cost
//!   matching via `epplan-flow`;
//! * [`GreedySolver`](greedy::greedy_assign) — regret-based heuristic
//!   baseline;
//! * [`exact::branch_and_bound`] — exact optimum for small instances
//!   (used in tests and the approximation-ratio ablation);
//! * [`GapSolver`] — the composed pipeline with automatic method
//!   selection.
//!
//! Every solver follows the fallible contract of `epplan-solve`:
//! malformed instances are `BadInput` errors (construction *poisons*
//! the instance instead of panicking), genuinely over-constrained
//! systems are `Infeasible`, and each entry point has a
//! `*_with_budget` variant that spends an [`epplan_solve::SolveBudget`]
//! and fails with `BudgetExhausted` — carrying the best partial
//! artifact produced so far — when the allowance runs out.


// Solver code must degrade with typed errors, never panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod fractional;
pub mod greedy;
pub mod lp_relax;
pub mod packing;
pub mod rounding;
mod solver;

mod instance;

pub use fractional::FractionalSolution;
pub use instance::{GapInstance, GapSolution};
pub use lp_relax::{lp_relaxation, lp_relaxation_with_budget};
pub use rounding::{round_shmoys_tardos, round_shmoys_tardos_with_budget};
pub use solver::{FractionalMethod, GapConfig, GapSolver};
