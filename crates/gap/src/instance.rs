/// Compressed candidate storage shared by groups of identical jobs.
///
/// The GEPC reduction creates `ξ_j` *identical* copies of every event,
/// so a dense machine-major matrix stores each event's candidate column
/// `ξ_j` times — and stores every non-candidate pair besides. This
/// layout keeps one machine-ascending candidate row per *group* (event)
/// in a flat CSR arena, with `job_group` mapping each job (copy) to its
/// row. Pairs absent from a row are forbidden.
#[derive(Debug, Clone)]
struct SparseLayout {
    /// Job → candidate row (group) index; copies share a row.
    job_group: Vec<u32>,
    /// Row offsets into the arenas, `n_groups + 1` entries.
    offsets: Vec<u32>,
    /// Candidate machine ids, strictly ascending within a row.
    machines: Vec<u32>,
    /// Parallel to `machines`: assignment costs (finite).
    costs: Vec<f64>,
    /// Parallel to `machines`: processing times (finite, ≥ 0).
    times: Vec<f64>,
}

impl SparseLayout {
    /// Arena slice of candidate row `r` as `(machines, costs, times)`.
    #[inline]
    fn row(&self, r: usize) -> (&[u32], &[f64], &[f64]) {
        let lo = self.offsets[r] as usize;
        let hi = self.offsets[r + 1] as usize;
        (
            &self.machines[lo..hi],
            &self.costs[lo..hi],
            &self.times[lo..hi],
        )
    }

    /// Arena index of `(machine, job)` if the pair is a candidate.
    #[inline]
    fn find(&self, machine: usize, job: usize) -> Option<usize> {
        let r = self.job_group[job] as usize;
        let lo = self.offsets[r] as usize;
        let hi = self.offsets[r + 1] as usize;
        self.machines[lo..hi]
            .binary_search(&(machine as u32))
            .ok()
            .map(|k| lo + k)
    }
}

/// A Generalized Assignment Problem instance.
///
/// `n_machines` machines (users, in the GEPC reduction) and `n_jobs`
/// jobs (event copies). Assigning job `j` to machine `i` incurs cost
/// `cost(i, j)` and consumes `time(i, j)` of machine `i`'s capacity
/// `capacity(i)`. The objective is to assign **every** job to exactly
/// one machine, minimizing total cost, with every machine's consumed
/// time within its capacity.
///
/// A pair may be *forbidden* (the user cannot attend the event at all,
/// e.g. zero utility or unaffordable travel): forbidden pairs have
/// infinite cost and are excluded from every solver's search space.
///
/// Storage is either a dense machine-major matrix (the small-instance
/// constructors [`GapInstance::new`] / [`GapInstance::from_matrices`])
/// or a per-group candidate-list CSR arena
/// ([`GapInstance::from_group_candidates`]), which is what the ξ-GEPC
/// reduction emits at scale: memory and solver work become
/// O(candidates) instead of O(machines × jobs). Accessors dispatch on
/// the layout; sparse instances are immutable after construction
/// (`set`/`forbid` poison them).
///
/// Malformed construction (wrong capacity count, negative or NaN
/// values, out-of-range indices) does not panic: the offending value is
/// neutralized and the first defect is recorded. Every solver entry
/// point checks [`GapInstance::defect`] and refuses a poisoned instance
/// with a `BadInput` error, so a bad instance fails loudly at solve
/// time instead of aborting the process at build time.
#[derive(Debug, Clone)]
pub struct GapInstance {
    n_machines: usize,
    n_jobs: usize,
    /// Machine-major `n_machines × n_jobs`; `f64::INFINITY` = forbidden.
    /// Empty when `sparse` carries the candidate arena.
    costs: Vec<f64>,
    times: Vec<f64>,
    capacity: Vec<f64>,
    /// Candidate-list storage, when built sparsely.
    sparse: Option<SparseLayout>,
    /// First construction defect observed, if any.
    defect: Option<String>,
}

impl GapInstance {
    /// Creates an instance with all costs/times zero and the given
    /// capacities. A capacity vector of the wrong length, or one with
    /// negative/non-finite entries, poisons the instance (see
    /// [`GapInstance::defect`]).
    pub fn new(n_machines: usize, n_jobs: usize, mut capacity: Vec<f64>) -> Self {
        let mut defect = None;
        if capacity.len() != n_machines {
            defect = Some(format!(
                "expected one capacity per machine ({n_machines}), got {}",
                capacity.len()
            ));
            capacity.resize(n_machines, 0.0);
        }
        for (i, c) in capacity.iter_mut().enumerate() {
            if !c.is_finite() || *c < 0.0 {
                defect.get_or_insert_with(|| format!("machine {i} has invalid capacity {c}"));
                *c = 0.0;
            }
        }
        GapInstance {
            n_machines,
            n_jobs,
            costs: vec![0.0; n_machines * n_jobs],
            times: vec![0.0; n_machines * n_jobs],
            capacity,
            sparse: None,
            defect,
        }
    }

    /// Builds a sparse instance from per-group candidate rows.
    ///
    /// `job_group[j]` names the row of `rows` job `j` draws candidates
    /// from; jobs sharing a group (the ξ copies of one event) share one
    /// row. Each row lists `(machine, cost, time)` triples with
    /// strictly ascending machine ids; every pair *not* listed is
    /// forbidden. Malformed input — an out-of-range group or machine, a
    /// non-ascending row, a NaN/infinite cost, a negative or non-finite
    /// time, or an arena larger than `u32::MAX` entries — poisons the
    /// instance (see [`GapInstance::defect`]); offending entries are
    /// dropped so the stored arena stays structurally consistent.
    pub fn from_group_candidates(
        n_machines: usize,
        capacity: Vec<f64>,
        job_group: Vec<u32>,
        rows: &[Vec<(u32, f64, f64)>],
    ) -> Self {
        let n_jobs = job_group.len();
        // Validate capacities via the dense constructor with zero jobs:
        // allocating the machines × jobs matrices just to discard them
        // would make the sparse path's peak memory O(machines × jobs)
        // at construction (tens of GiB at |U| = 10^6).
        let mut inst = GapInstance::new(n_machines, 0, capacity);
        inst.n_jobs = n_jobs;
        let mut job_group = job_group;
        for g in job_group.iter_mut() {
            if *g as usize >= rows.len() {
                inst.poison(format!(
                    "job group {g} out of range ({} candidate rows)",
                    rows.len()
                ));
                *g = 0;
            }
        }
        let nnz: usize = rows.iter().map(Vec::len).sum();
        if nnz > u32::MAX as usize {
            inst.poison(format!("candidate arena has {nnz} entries (u32 offsets)"));
        }
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut machines = Vec::with_capacity(nnz.min(u32::MAX as usize));
        let mut costs = Vec::with_capacity(machines.capacity());
        let mut times = Vec::with_capacity(machines.capacity());
        offsets.push(0u32);
        for (r, row) in rows.iter().enumerate() {
            let mut prev: Option<u32> = None;
            for &(i, c, t) in row {
                if i as usize >= n_machines {
                    inst.poison(format!("row {r}: machine {i} out of range ({n_machines})"));
                    continue;
                }
                if prev.is_some_and(|p| i <= p) {
                    inst.poison(format!("row {r}: machine ids not strictly ascending"));
                    continue;
                }
                if !c.is_finite() {
                    inst.poison(format!("row {r}: machine {i} has non-finite cost {c}"));
                    continue;
                }
                if !t.is_finite() || t < 0.0 {
                    inst.poison(format!("row {r}: machine {i} has invalid time {t}"));
                    continue;
                }
                if machines.len() == u32::MAX as usize {
                    break;
                }
                prev = Some(i);
                machines.push(i);
                costs.push(c);
                times.push(t);
            }
            offsets.push(machines.len() as u32);
        }
        if rows.is_empty() && n_jobs > 0 {
            // Every job's group was clamped to row 0 (and the instance
            // poisoned); give them an empty row to stay panic-free.
            offsets.push(0);
        }
        inst.sparse = Some(SparseLayout {
            job_group,
            offsets,
            machines,
            costs,
            times,
        });
        inst
    }

    /// Whether this instance uses the candidate-list (CSR) layout.
    pub fn is_sparse(&self) -> bool {
        self.sparse.is_some()
    }

    /// Builds an instance from dense matrices (machine-major rows).
    /// Ragged matrices poison the instance.
    pub fn from_matrices(costs: Vec<Vec<f64>>, times: Vec<Vec<f64>>, capacity: Vec<f64>) -> Self {
        let n_machines = costs.len();
        let n_jobs = costs.first().map_or(0, Vec::len);
        let mut inst = GapInstance::new(n_machines, n_jobs, capacity);
        if times.len() != n_machines {
            inst.poison(format!(
                "time matrix has {} rows for {n_machines} machines",
                times.len()
            ));
        }
        for (i, cost_row) in costs.iter().enumerate() {
            if cost_row.len() != n_jobs {
                inst.poison(format!("ragged cost matrix at machine {i}"));
            }
            if times.get(i).is_some_and(|row| row.len() != n_jobs) {
                inst.poison(format!("ragged time matrix at machine {i}"));
            }
            for j in 0..n_jobs {
                let c = cost_row.get(j).copied().unwrap_or(f64::INFINITY);
                let t = times.get(i).and_then(|row| row.get(j)).copied().unwrap_or(0.0);
                inst.set(i, j, c, t);
            }
        }
        inst
    }

    /// Records the first construction defect; later ones are dropped.
    fn poison(&mut self, message: String) {
        self.defect.get_or_insert(message);
    }

    /// The first construction defect, if the instance is malformed.
    /// Solvers reject poisoned instances with a `BadInput` error.
    pub fn defect(&self) -> Option<&str> {
        self.defect.as_deref()
    }

    #[inline]
    fn idx(&self, machine: usize, job: usize) -> usize {
        debug_assert!(machine < self.n_machines && job < self.n_jobs);
        machine * self.n_jobs + job
    }

    /// Sets the cost and time of a machine–job pair. Out-of-range
    /// indices, NaN costs, and negative or non-finite times poison the
    /// instance instead of panicking. Sparse instances are immutable:
    /// copies share candidate rows, so a per-pair write is ill-defined
    /// and poisons the instance.
    pub fn set(&mut self, machine: usize, job: usize, cost: f64, mut time: f64) {
        if self.sparse.is_some() {
            self.poison(format!(
                "set ({machine}, {job}) on an immutable sparse instance"
            ));
            return;
        }
        if machine >= self.n_machines || job >= self.n_jobs {
            self.poison(format!(
                "pair ({machine}, {job}) out of range ({} × {})",
                self.n_machines, self.n_jobs
            ));
            return;
        }
        if cost.is_nan() {
            self.poison(format!("pair ({machine}, {job}) has NaN cost"));
            return;
        }
        if !time.is_finite() || time < 0.0 {
            self.poison(format!("pair ({machine}, {job}) has invalid time {time}"));
            time = 0.0;
        }
        let k = self.idx(machine, job);
        self.costs[k] = cost;
        self.times[k] = time;
    }

    /// Marks a pair as forbidden (never assignable). Out-of-range
    /// indices poison the instance, as does a sparse instance (whose
    /// forbidden pairs are fixed at construction).
    pub fn forbid(&mut self, machine: usize, job: usize) {
        if self.sparse.is_some() {
            self.poison(format!(
                "forbid ({machine}, {job}) on an immutable sparse instance"
            ));
            return;
        }
        if machine >= self.n_machines || job >= self.n_jobs {
            self.poison(format!(
                "forbid ({machine}, {job}) out of range ({} × {})",
                self.n_machines, self.n_jobs
            ));
            return;
        }
        let k = self.idx(machine, job);
        self.costs[k] = f64::INFINITY;
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.n_machines
    }

    /// Number of jobs.
    pub fn n_jobs(&self) -> usize {
        self.n_jobs
    }

    /// Cost of assigning `job` to `machine` (infinite if forbidden).
    #[inline]
    pub fn cost(&self, machine: usize, job: usize) -> f64 {
        match &self.sparse {
            Some(s) => s.find(machine, job).map_or(f64::INFINITY, |k| s.costs[k]),
            None => self.costs[self.idx(machine, job)],
        }
    }

    /// Processing time of `job` on `machine` (0 for forbidden sparse
    /// pairs, which no solver path consumes).
    #[inline]
    pub fn time(&self, machine: usize, job: usize) -> f64 {
        match &self.sparse {
            Some(s) => s.find(machine, job).map_or(0.0, |k| s.times[k]),
            None => self.times[self.idx(machine, job)],
        }
    }

    /// Capacity of `machine`.
    #[inline]
    pub fn capacity(&self, machine: usize) -> f64 {
        self.capacity[machine]
    }

    /// Whether the pair may be used: present (sparse) with finite cost,
    /// and the job fits the machine's capacity on its own (`p_{i,j} ≤
    /// T_i`, the standard GAP preprocessing step that the Shmoys–Tardos
    /// analysis requires).
    #[inline]
    pub fn allowed(&self, machine: usize, job: usize) -> bool {
        match &self.sparse {
            Some(s) => s.find(machine, job).is_some_and(|k| {
                s.times[k] <= self.capacity[machine] + 1e-12
            }),
            None => {
                let k = self.idx(machine, job);
                self.costs[k].is_finite() && self.times[k] <= self.capacity[machine] + 1e-12
            }
        }
    }

    /// Number of distinct candidate rows: one per job group for sparse
    /// instances (copies share a row), one per job for dense ones.
    pub fn n_candidate_rows(&self) -> usize {
        match &self.sparse {
            Some(s) => s.offsets.len() - 1,
            None => self.n_jobs,
        }
    }

    /// The candidate row `job` draws its machines from.
    #[inline]
    pub fn candidate_row_of(&self, job: usize) -> usize {
        match &self.sparse {
            Some(s) => s.job_group[job] as usize,
            None => job,
        }
    }

    /// Allowed `(machine, cost, time)` triples of candidate row `row`,
    /// machine-ascending. The workhorse of every solver's inner loop:
    /// O(row candidates) on sparse instances, one pass over the
    /// machines on dense ones.
    pub fn row_allowed_triples(
        &self,
        row: usize,
    ) -> impl Iterator<Item = (usize, f64, f64)> + '_ {
        let (machines, costs, times, dense_n) = match &self.sparse {
            Some(s) => {
                let (m, c, t) = s.row(row);
                (m, c, t, 0)
            }
            None => (&[][..], &[][..], &[][..], self.n_machines),
        };
        let sparse_iter = machines
            .iter()
            .zip(costs.iter())
            .zip(times.iter())
            .filter_map(move |((&i, &c), &t)| {
                (c.is_finite() && t <= self.capacity[i as usize] + 1e-12)
                    .then_some((i as usize, c, t))
            });
        let dense_iter = (0..dense_n)
            .filter(move |&i| self.allowed(i, row))
            .map(move |i| (i, self.cost(i, row), self.time(i, row)));
        dense_iter.chain(sparse_iter)
    }

    /// Allowed `(machine, cost, time)` triples for `job`,
    /// machine-ascending.
    pub fn allowed_triples(&self, job: usize) -> impl Iterator<Item = (usize, f64, f64)> + '_ {
        self.row_allowed_triples(self.candidate_row_of(job))
    }

    /// Machines allowed for `job`.
    pub fn allowed_machines(&self, job: usize) -> impl Iterator<Item = usize> + '_ {
        self.allowed_triples(job).map(|(i, _, _)| i)
    }

    /// Number of allowed machine–job pairs (the LP variable count).
    /// O(candidates) on sparse instances, O(machines × jobs) dense.
    pub fn allowed_pairs_count(&self) -> usize {
        match &self.sparse {
            Some(s) => {
                // Allowed count per row, then sum over jobs via the
                // group map (copies multiply their row's count).
                let per_row: Vec<usize> = (0..s.offsets.len() - 1)
                    .map(|r| self.row_allowed_triples(r).count())
                    .collect();
                s.job_group.iter().map(|&g| per_row[g as usize]).sum()
            }
            None => (0..self.n_jobs)
                .map(|j| self.allowed_machines(j).count())
                .sum(),
        }
    }

    /// Jobs with no allowed machine (unassignable under any policy).
    pub fn unassignable_jobs(&self) -> Vec<usize> {
        match &self.sparse {
            Some(s) => {
                let row_ok: Vec<bool> = (0..s.offsets.len() - 1)
                    .map(|r| self.row_allowed_triples(r).next().is_some())
                    .collect();
                (0..self.n_jobs)
                    .filter(|&j| !row_ok[s.job_group[j] as usize])
                    .collect()
            }
            None => (0..self.n_jobs)
                .filter(|&j| self.allowed_machines(j).next().is_none())
                .collect(),
        }
    }

    /// Total cost of an assignment (ignoring `None` entries).
    pub fn assignment_cost(&self, assignment: &[Option<usize>]) -> f64 {
        assignment
            .iter()
            .enumerate()
            .filter_map(|(j, &m)| m.map(|i| self.cost(i, j)))
            .sum()
    }

    /// Per-machine loads of an assignment.
    pub fn loads(&self, assignment: &[Option<usize>]) -> Vec<f64> {
        let mut loads = vec![0.0; self.n_machines];
        for (j, &m) in assignment.iter().enumerate() {
            if let Some(i) = m {
                loads[i] += self.time(i, j);
            }
        }
        loads
    }
}

/// An (integral) GAP solution.
#[derive(Debug, Clone)]
pub struct GapSolution {
    /// `assignment[j]` is the machine of job `j`, or `None` if the
    /// solver could not place the job (infeasible instance).
    pub assignment: Vec<Option<usize>>,
    /// Total cost over assigned jobs.
    pub cost: f64,
    /// Per-machine consumed time.
    pub loads: Vec<f64>,
    /// Objective of the fractional relaxation, when one was solved —
    /// a lower bound on the optimal integral cost (complete solutions).
    pub fractional_cost: Option<f64>,
}

impl GapSolution {
    pub(crate) fn from_assignment(inst: &GapInstance, assignment: Vec<Option<usize>>) -> Self {
        let cost = inst.assignment_cost(&assignment);
        let loads = inst.loads(&assignment);
        GapSolution {
            assignment,
            cost,
            loads,
            fractional_cost: None,
        }
    }

    /// `true` when every job was assigned.
    pub fn is_complete(&self) -> bool {
        self.assignment.iter().all(Option::is_some)
    }

    /// Jobs the solver failed to place.
    pub fn unassigned_jobs(&self) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_none())
            .map(|(j, _)| j)
            .collect()
    }

    /// Whether every machine's load is within `factor ×` its capacity.
    pub fn within_capacity(&self, inst: &GapInstance, factor: f64) -> bool {
        self.loads
            .iter()
            .enumerate()
            .all(|(i, &l)| l <= factor * inst.capacity(i) + 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GapInstance {
        GapInstance::from_matrices(
            vec![vec![1.0, 2.0], vec![3.0, 0.5]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![2.0, 1.0],
        )
    }

    #[test]
    fn accessors() {
        let g = tiny();
        assert_eq!(g.n_machines(), 2);
        assert_eq!(g.n_jobs(), 2);
        assert_eq!(g.cost(0, 1), 2.0);
        assert_eq!(g.time(1, 0), 1.0);
        assert_eq!(g.capacity(1), 1.0);
    }

    #[test]
    fn forbid_excludes_pair() {
        let mut g = tiny();
        assert!(g.allowed(0, 0));
        g.forbid(0, 0);
        assert!(!g.allowed(0, 0));
        assert_eq!(g.allowed_machines(0).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn oversized_job_not_allowed() {
        let mut g = tiny();
        g.set(1, 0, 1.0, 5.0); // exceeds capacity 1.0
        assert!(!g.allowed(1, 0));
    }

    #[test]
    fn unassignable_detection() {
        let mut g = tiny();
        g.forbid(0, 1);
        g.forbid(1, 1);
        assert_eq!(g.unassignable_jobs(), vec![1]);
    }

    #[test]
    fn cost_and_loads() {
        let g = tiny();
        let a = vec![Some(0), Some(1)];
        assert_eq!(g.assignment_cost(&a), 1.5);
        assert_eq!(g.loads(&a), vec![1.0, 1.0]);
        let s = GapSolution::from_assignment(&g, a);
        assert!(s.is_complete());
        assert!(s.within_capacity(&g, 1.0));
    }

    #[test]
    fn partial_assignment() {
        let g = tiny();
        let s = GapSolution::from_assignment(&g, vec![Some(0), None]);
        assert!(!s.is_complete());
        assert_eq!(s.unassigned_jobs(), vec![1]);
        assert_eq!(s.cost, 1.0);
    }

    #[test]
    fn wrong_capacity_count_poisons() {
        let g = GapInstance::new(2, 2, vec![1.0]);
        assert!(g.defect().is_some_and(|d| d.contains("capacity")));
        // The instance is still usable without panicking.
        assert_eq!(g.capacity(1), 0.0);
    }

    #[test]
    fn invalid_values_poison() {
        let mut g = tiny();
        assert!(g.defect().is_none());
        g.set(0, 0, f64::NAN, 1.0);
        assert!(g.defect().is_some_and(|d| d.contains("NaN")));
        let mut g = tiny();
        g.set(5, 0, 1.0, 1.0);
        assert!(g.defect().is_some_and(|d| d.contains("out of range")));
        let mut g = tiny();
        g.set(0, 0, 1.0, -2.0);
        assert!(g.defect().is_some_and(|d| d.contains("invalid time")));
        let mut g = tiny();
        g.forbid(0, 9);
        assert!(g.defect().is_some());
        let g = GapInstance::new(1, 1, vec![-3.0]);
        assert!(g.defect().is_some_and(|d| d.contains("invalid capacity")));
        assert_eq!(g.capacity(0), 0.0);
    }

    /// Sparse twin of `tiny()`: two jobs sharing one candidate row plus
    /// a third job with its own row.
    fn sparse_tiny() -> GapInstance {
        GapInstance::from_group_candidates(
            3,
            vec![2.0, 1.0, 4.0],
            vec![0, 0, 1],
            &[
                vec![(0, 1.0, 1.0), (2, 0.5, 3.0)],
                vec![(1, 2.0, 1.0)],
            ],
        )
    }

    #[test]
    fn sparse_accessors_match_candidate_rows() {
        let g = sparse_tiny();
        assert!(g.is_sparse());
        assert!(g.defect().is_none());
        assert_eq!(g.n_machines(), 3);
        assert_eq!(g.n_jobs(), 3);
        assert_eq!(g.n_candidate_rows(), 2);
        assert_eq!(g.candidate_row_of(1), 0);
        assert_eq!(g.candidate_row_of(2), 1);
        // Copies share the row.
        assert_eq!(g.cost(0, 0), 1.0);
        assert_eq!(g.cost(0, 1), 1.0);
        assert_eq!(g.time(2, 0), 3.0);
        // Absent pair is forbidden.
        assert_eq!(g.cost(1, 0), f64::INFINITY);
        assert_eq!(g.time(1, 0), 0.0);
        assert!(!g.allowed(1, 0));
        // Present pair still gated by capacity: machine 2 has cap 4.
        assert!(g.allowed(2, 0));
        assert_eq!(g.allowed_machines(0).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(
            g.allowed_triples(2).collect::<Vec<_>>(),
            vec![(1, 2.0, 1.0)]
        );
    }

    #[test]
    fn sparse_capacity_gates_oversized_candidates() {
        // Machine 1 (cap 1.0) listed with time 5.0: present but not
        // allowed — the p ≤ T preprocessing applies to sparse rows too.
        let g = GapInstance::from_group_candidates(
            2,
            vec![2.0, 1.0],
            vec![0],
            &[vec![(0, 1.0, 1.0), (1, 0.1, 5.0)]],
        );
        assert!(!g.allowed(1, 0));
        assert_eq!(g.allowed_machines(0).collect::<Vec<_>>(), vec![0]);
        assert_eq!(g.allowed_pairs_count(), 1);
    }

    #[test]
    fn sparse_matches_dense_semantics() {
        // The same instance built both ways answers identically.
        let sparse = sparse_tiny();
        let mut dense = GapInstance::new(3, 3, vec![2.0, 1.0, 4.0]);
        for j in 0..2 {
            dense.set(0, j, 1.0, 1.0);
            dense.set(2, j, 0.5, 3.0);
            dense.forbid(1, j);
        }
        dense.set(1, 2, 2.0, 1.0);
        dense.forbid(0, 2);
        dense.forbid(2, 2);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(sparse.allowed(i, j), dense.allowed(i, j), "({i},{j})");
                if sparse.allowed(i, j) {
                    assert_eq!(sparse.cost(i, j), dense.cost(i, j));
                    assert_eq!(sparse.time(i, j), dense.time(i, j));
                }
            }
        }
        assert_eq!(sparse.allowed_pairs_count(), dense.allowed_pairs_count());
        assert_eq!(sparse.unassignable_jobs(), dense.unassignable_jobs());
    }

    #[test]
    fn sparse_unassignable_jobs_via_group_rows() {
        let g = GapInstance::from_group_candidates(
            2,
            vec![1.0, 1.0],
            vec![0, 1, 0],
            &[vec![(0, 0.3, 1.0)], vec![]],
        );
        assert_eq!(g.unassignable_jobs(), vec![1]);
    }

    #[test]
    fn sparse_is_immutable() {
        let mut g = sparse_tiny();
        g.set(0, 0, 0.5, 1.0);
        assert!(g.defect().is_some_and(|d| d.contains("immutable")));
        let mut g = sparse_tiny();
        g.forbid(0, 0);
        assert!(g.defect().is_some_and(|d| d.contains("immutable")));
    }

    #[test]
    fn sparse_malformed_rows_poison() {
        // Out-of-range machine.
        let g = GapInstance::from_group_candidates(
            1,
            vec![1.0],
            vec![0],
            &[vec![(5, 1.0, 1.0)]],
        );
        assert!(g.defect().is_some_and(|d| d.contains("out of range")));
        // Non-ascending machines.
        let g = GapInstance::from_group_candidates(
            2,
            vec![1.0, 1.0],
            vec![0],
            &[vec![(1, 1.0, 1.0), (0, 1.0, 1.0)]],
        );
        assert!(g.defect().is_some_and(|d| d.contains("ascending")));
        // NaN cost and negative time.
        let g = GapInstance::from_group_candidates(
            1,
            vec![1.0],
            vec![0],
            &[vec![(0, f64::NAN, 1.0)]],
        );
        assert!(g.defect().is_some_and(|d| d.contains("cost")));
        let g = GapInstance::from_group_candidates(
            1,
            vec![1.0],
            vec![0],
            &[vec![(0, 1.0, -1.0)]],
        );
        assert!(g.defect().is_some_and(|d| d.contains("time")));
        // Dangling group reference, including the no-rows corner.
        let g = GapInstance::from_group_candidates(1, vec![1.0], vec![3], &[]);
        assert!(g.defect().is_some_and(|d| d.contains("group")));
        assert!(!g.allowed(0, 0)); // structurally consistent, no panic
    }
}
