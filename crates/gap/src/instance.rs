/// A Generalized Assignment Problem instance.
///
/// `n_machines` machines (users, in the GEPC reduction) and `n_jobs`
/// jobs (event copies). Assigning job `j` to machine `i` incurs cost
/// `cost(i, j)` and consumes `time(i, j)` of machine `i`'s capacity
/// `capacity(i)`. The objective is to assign **every** job to exactly
/// one machine, minimizing total cost, with every machine's consumed
/// time within its capacity.
///
/// A pair may be *forbidden* (the user cannot attend the event at all,
/// e.g. zero utility or unaffordable travel): forbidden pairs have
/// infinite cost and are excluded from every solver's search space.
///
/// Malformed construction (wrong capacity count, negative or NaN
/// values, out-of-range indices) does not panic: the offending value is
/// neutralized and the first defect is recorded. Every solver entry
/// point checks [`GapInstance::defect`] and refuses a poisoned instance
/// with a `BadInput` error, so a bad instance fails loudly at solve
/// time instead of aborting the process at build time.
#[derive(Debug, Clone)]
pub struct GapInstance {
    n_machines: usize,
    n_jobs: usize,
    /// Machine-major `n_machines × n_jobs`; `f64::INFINITY` = forbidden.
    costs: Vec<f64>,
    times: Vec<f64>,
    capacity: Vec<f64>,
    /// First construction defect observed, if any.
    defect: Option<String>,
}

impl GapInstance {
    /// Creates an instance with all costs/times zero and the given
    /// capacities. A capacity vector of the wrong length, or one with
    /// negative/non-finite entries, poisons the instance (see
    /// [`GapInstance::defect`]).
    pub fn new(n_machines: usize, n_jobs: usize, mut capacity: Vec<f64>) -> Self {
        let mut defect = None;
        if capacity.len() != n_machines {
            defect = Some(format!(
                "expected one capacity per machine ({n_machines}), got {}",
                capacity.len()
            ));
            capacity.resize(n_machines, 0.0);
        }
        for (i, c) in capacity.iter_mut().enumerate() {
            if !c.is_finite() || *c < 0.0 {
                defect.get_or_insert_with(|| format!("machine {i} has invalid capacity {c}"));
                *c = 0.0;
            }
        }
        GapInstance {
            n_machines,
            n_jobs,
            costs: vec![0.0; n_machines * n_jobs],
            times: vec![0.0; n_machines * n_jobs],
            capacity,
            defect,
        }
    }

    /// Builds an instance from dense matrices (machine-major rows).
    /// Ragged matrices poison the instance.
    pub fn from_matrices(costs: Vec<Vec<f64>>, times: Vec<Vec<f64>>, capacity: Vec<f64>) -> Self {
        let n_machines = costs.len();
        let n_jobs = costs.first().map_or(0, Vec::len);
        let mut inst = GapInstance::new(n_machines, n_jobs, capacity);
        if times.len() != n_machines {
            inst.poison(format!(
                "time matrix has {} rows for {n_machines} machines",
                times.len()
            ));
        }
        for (i, cost_row) in costs.iter().enumerate() {
            if cost_row.len() != n_jobs {
                inst.poison(format!("ragged cost matrix at machine {i}"));
            }
            if times.get(i).is_some_and(|row| row.len() != n_jobs) {
                inst.poison(format!("ragged time matrix at machine {i}"));
            }
            for j in 0..n_jobs {
                let c = cost_row.get(j).copied().unwrap_or(f64::INFINITY);
                let t = times.get(i).and_then(|row| row.get(j)).copied().unwrap_or(0.0);
                inst.set(i, j, c, t);
            }
        }
        inst
    }

    /// Records the first construction defect; later ones are dropped.
    fn poison(&mut self, message: String) {
        self.defect.get_or_insert(message);
    }

    /// The first construction defect, if the instance is malformed.
    /// Solvers reject poisoned instances with a `BadInput` error.
    pub fn defect(&self) -> Option<&str> {
        self.defect.as_deref()
    }

    #[inline]
    fn idx(&self, machine: usize, job: usize) -> usize {
        debug_assert!(machine < self.n_machines && job < self.n_jobs);
        machine * self.n_jobs + job
    }

    /// Sets the cost and time of a machine–job pair. Out-of-range
    /// indices, NaN costs, and negative or non-finite times poison the
    /// instance instead of panicking.
    pub fn set(&mut self, machine: usize, job: usize, cost: f64, mut time: f64) {
        if machine >= self.n_machines || job >= self.n_jobs {
            self.poison(format!(
                "pair ({machine}, {job}) out of range ({} × {})",
                self.n_machines, self.n_jobs
            ));
            return;
        }
        if cost.is_nan() {
            self.poison(format!("pair ({machine}, {job}) has NaN cost"));
            return;
        }
        if !time.is_finite() || time < 0.0 {
            self.poison(format!("pair ({machine}, {job}) has invalid time {time}"));
            time = 0.0;
        }
        let k = self.idx(machine, job);
        self.costs[k] = cost;
        self.times[k] = time;
    }

    /// Marks a pair as forbidden (never assignable). Out-of-range
    /// indices poison the instance.
    pub fn forbid(&mut self, machine: usize, job: usize) {
        if machine >= self.n_machines || job >= self.n_jobs {
            self.poison(format!(
                "forbid ({machine}, {job}) out of range ({} × {})",
                self.n_machines, self.n_jobs
            ));
            return;
        }
        let k = self.idx(machine, job);
        self.costs[k] = f64::INFINITY;
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.n_machines
    }

    /// Number of jobs.
    pub fn n_jobs(&self) -> usize {
        self.n_jobs
    }

    /// Cost of assigning `job` to `machine` (infinite if forbidden).
    #[inline]
    pub fn cost(&self, machine: usize, job: usize) -> f64 {
        self.costs[self.idx(machine, job)]
    }

    /// Processing time of `job` on `machine`.
    #[inline]
    pub fn time(&self, machine: usize, job: usize) -> f64 {
        self.times[self.idx(machine, job)]
    }

    /// Capacity of `machine`.
    #[inline]
    pub fn capacity(&self, machine: usize) -> f64 {
        self.capacity[machine]
    }

    /// Whether the pair may be used: finite cost and the job fits the
    /// machine's capacity on its own (`p_{i,j} ≤ T_i`, the standard GAP
    /// preprocessing step that the Shmoys–Tardos analysis requires).
    #[inline]
    pub fn allowed(&self, machine: usize, job: usize) -> bool {
        let k = self.idx(machine, job);
        self.costs[k].is_finite() && self.times[k] <= self.capacity[machine] + 1e-12
    }

    /// Machines allowed for `job`.
    pub fn allowed_machines(&self, job: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n_machines).filter(move |&i| self.allowed(i, job))
    }

    /// Jobs with no allowed machine (unassignable under any policy).
    pub fn unassignable_jobs(&self) -> Vec<usize> {
        (0..self.n_jobs)
            .filter(|&j| self.allowed_machines(j).next().is_none())
            .collect()
    }

    /// Total cost of an assignment (ignoring `None` entries).
    pub fn assignment_cost(&self, assignment: &[Option<usize>]) -> f64 {
        assignment
            .iter()
            .enumerate()
            .filter_map(|(j, &m)| m.map(|i| self.cost(i, j)))
            .sum()
    }

    /// Per-machine loads of an assignment.
    pub fn loads(&self, assignment: &[Option<usize>]) -> Vec<f64> {
        let mut loads = vec![0.0; self.n_machines];
        for (j, &m) in assignment.iter().enumerate() {
            if let Some(i) = m {
                loads[i] += self.time(i, j);
            }
        }
        loads
    }
}

/// An (integral) GAP solution.
#[derive(Debug, Clone)]
pub struct GapSolution {
    /// `assignment[j]` is the machine of job `j`, or `None` if the
    /// solver could not place the job (infeasible instance).
    pub assignment: Vec<Option<usize>>,
    /// Total cost over assigned jobs.
    pub cost: f64,
    /// Per-machine consumed time.
    pub loads: Vec<f64>,
    /// Objective of the fractional relaxation, when one was solved —
    /// a lower bound on the optimal integral cost (complete solutions).
    pub fractional_cost: Option<f64>,
}

impl GapSolution {
    pub(crate) fn from_assignment(inst: &GapInstance, assignment: Vec<Option<usize>>) -> Self {
        let cost = inst.assignment_cost(&assignment);
        let loads = inst.loads(&assignment);
        GapSolution {
            assignment,
            cost,
            loads,
            fractional_cost: None,
        }
    }

    /// `true` when every job was assigned.
    pub fn is_complete(&self) -> bool {
        self.assignment.iter().all(Option::is_some)
    }

    /// Jobs the solver failed to place.
    pub fn unassigned_jobs(&self) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_none())
            .map(|(j, _)| j)
            .collect()
    }

    /// Whether every machine's load is within `factor ×` its capacity.
    pub fn within_capacity(&self, inst: &GapInstance, factor: f64) -> bool {
        self.loads
            .iter()
            .enumerate()
            .all(|(i, &l)| l <= factor * inst.capacity(i) + 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GapInstance {
        GapInstance::from_matrices(
            vec![vec![1.0, 2.0], vec![3.0, 0.5]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![2.0, 1.0],
        )
    }

    #[test]
    fn accessors() {
        let g = tiny();
        assert_eq!(g.n_machines(), 2);
        assert_eq!(g.n_jobs(), 2);
        assert_eq!(g.cost(0, 1), 2.0);
        assert_eq!(g.time(1, 0), 1.0);
        assert_eq!(g.capacity(1), 1.0);
    }

    #[test]
    fn forbid_excludes_pair() {
        let mut g = tiny();
        assert!(g.allowed(0, 0));
        g.forbid(0, 0);
        assert!(!g.allowed(0, 0));
        assert_eq!(g.allowed_machines(0).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn oversized_job_not_allowed() {
        let mut g = tiny();
        g.set(1, 0, 1.0, 5.0); // exceeds capacity 1.0
        assert!(!g.allowed(1, 0));
    }

    #[test]
    fn unassignable_detection() {
        let mut g = tiny();
        g.forbid(0, 1);
        g.forbid(1, 1);
        assert_eq!(g.unassignable_jobs(), vec![1]);
    }

    #[test]
    fn cost_and_loads() {
        let g = tiny();
        let a = vec![Some(0), Some(1)];
        assert_eq!(g.assignment_cost(&a), 1.5);
        assert_eq!(g.loads(&a), vec![1.0, 1.0]);
        let s = GapSolution::from_assignment(&g, a);
        assert!(s.is_complete());
        assert!(s.within_capacity(&g, 1.0));
    }

    #[test]
    fn partial_assignment() {
        let g = tiny();
        let s = GapSolution::from_assignment(&g, vec![Some(0), None]);
        assert!(!s.is_complete());
        assert_eq!(s.unassigned_jobs(), vec![1]);
        assert_eq!(s.cost, 1.0);
    }

    #[test]
    fn wrong_capacity_count_poisons() {
        let g = GapInstance::new(2, 2, vec![1.0]);
        assert!(g.defect().is_some_and(|d| d.contains("capacity")));
        // The instance is still usable without panicking.
        assert_eq!(g.capacity(1), 0.0);
    }

    #[test]
    fn invalid_values_poison() {
        let mut g = tiny();
        assert!(g.defect().is_none());
        g.set(0, 0, f64::NAN, 1.0);
        assert!(g.defect().is_some_and(|d| d.contains("NaN")));
        let mut g = tiny();
        g.set(5, 0, 1.0, 1.0);
        assert!(g.defect().is_some_and(|d| d.contains("out of range")));
        let mut g = tiny();
        g.set(0, 0, 1.0, -2.0);
        assert!(g.defect().is_some_and(|d| d.contains("invalid time")));
        let mut g = tiny();
        g.forbid(0, 9);
        assert!(g.defect().is_some());
        let g = GapInstance::new(1, 1, vec![-3.0]);
        assert!(g.defect().is_some_and(|d| d.contains("invalid capacity")));
        assert_eq!(g.capacity(0), 0.0);
    }
}
