//! The composed GAP pipeline: fractional solve → ST rounding →
//! greedy completion fallback.

use crate::packing::{mw_fractional, PackingConfig};
use crate::{
    lp_relaxation_with_budget, round_shmoys_tardos_with_budget, GapInstance, GapSolution,
};
use epplan_solve::{BudgetGuard, FailureKind, SolveBudget, SolveError};

/// Pipeline-stage label used in this solver's errors.
const STAGE: &str = "gap.pipeline";

/// How to obtain the fractional relaxation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FractionalMethod {
    /// Pick [`FractionalMethod::Simplex`] when the number of allowed
    /// pairs is at most [`GapConfig::auto_simplex_limit`], otherwise
    /// [`FractionalMethod::MultiplicativeWeights`]. This mirrors the
    /// paper's setup: an exact LP where affordable, the
    /// Plotkin–Shmoys–Tardos relaxation at scale.
    #[default]
    Auto,
    /// Exact LP relaxation via the dense two-phase simplex.
    Simplex,
    /// Multiplicative-weights approximate fractional solver.
    MultiplicativeWeights,
}

/// Configuration of [`GapSolver`].
#[derive(Debug, Clone)]
pub struct GapConfig {
    /// Fractional-solver selection policy.
    pub method: FractionalMethod,
    /// `Auto` switches from simplex to MW above this many LP variables
    /// (allowed machine–job pairs).
    pub auto_simplex_limit: usize,
    /// Multiplicative-weights tuning.
    pub packing: PackingConfig,
    /// Before rounding, prune each job's fractional support to its top
    /// `rounding_top_k` machines (renormalized). Keeps the slot-graph
    /// matching near-linear on large MW solutions; see
    /// [`crate::FractionalSolution::prune_top_k`].
    pub rounding_top_k: usize,
    /// Work allowance for the whole pipeline. The wall-clock portion is
    /// shared across stages (each stage receives what the previous ones
    /// left); iteration caps apply per stage in that stage's natural
    /// unit. Combined with [`PackingConfig::budget`] by taking the
    /// tighter limit.
    pub budget: SolveBudget,
}

impl Default for GapConfig {
    fn default() -> Self {
        GapConfig {
            method: FractionalMethod::Auto,
            auto_simplex_limit: 12_000,
            packing: PackingConfig::default(),
            rounding_top_k: 8,
            budget: SolveBudget::UNLIMITED,
        }
    }
}

/// End-to-end GAP solver: fractional relaxation, Shmoys–Tardos
/// rounding, and a greedy completion pass for any job the rounding
/// could not place (only possible when the relaxation itself was
/// infeasible or approximate).
#[derive(Debug, Clone, Default)]
pub struct GapSolver {
    /// Solver configuration.
    pub config: GapConfig,
}

impl GapSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: GapConfig) -> Self {
        GapSolver { config }
    }

    /// Solves `inst` within the configured budget.
    ///
    /// `fractional_cost` is populated whenever a relaxation was solved,
    /// giving the lower bound used in approximation-ratio reporting.
    /// A fractionally infeasible (or numerically degenerate) instance
    /// does not fail the pipeline: the solver falls back from the exact
    /// LP to the multiplicative-weights relaxation, whose output the
    /// rounding and completion passes can still turn into a best-effort
    /// partial assignment — per-job infeasibility then surfaces through
    /// [`GapSolution::unassigned_jobs`]. Typed failures are reserved
    /// for a poisoned instance (`BadInput`) and an exhausted budget
    /// (`BudgetExhausted`, carrying the best partial solution when one
    /// exists).
    pub fn solve(&self, inst: &GapInstance) -> Result<GapSolution, SolveError<GapSolution>> {
        if let Some(defect) = inst.defect() {
            return Err(SolveError::bad_input(
                STAGE,
                format!("malformed GAP instance: {defect}"),
            ));
        }
        let _sp = epplan_obs::span("gap.pipeline");
        let guard = BudgetGuard::new(self.config.budget);
        let n_pairs = inst.allowed_pairs_count();
        let use_simplex = match self.config.method {
            FractionalMethod::Auto => n_pairs <= self.config.auto_simplex_limit,
            FractionalMethod::Simplex => true,
            FractionalMethod::MultiplicativeWeights => false,
        };

        let frac = if use_simplex {
            match lp_relaxation_with_budget(inst, guard.remaining_budget()) {
                Ok(f) => f,
                Err(e)
                    if matches!(
                        e.kind,
                        FailureKind::Infeasible | FailureKind::NumericalInstability
                    ) =>
                {
                    // Fractionally infeasible (or pathological): fall
                    // back to the MW solver, which always produces a
                    // job-mass-1 solution (possibly overloading
                    // machines) that the rounding and completion passes
                    // can still work with.
                    self.mw_within(inst, guard.remaining_budget())?
                }
                Err(e) => return Err(e.discard_partial()),
            }
        } else {
            self.mw_within(inst, guard.remaining_budget())?
        };
        guard
            .check_deadline(STAGE)
            .map_err(SolveError::discard_partial)?;

        let mut frac = frac;
        if self.config.rounding_top_k > 0 {
            frac.prune_top_k(self.config.rounding_top_k);
        }
        match round_shmoys_tardos_with_budget(inst, &frac, guard.remaining_budget()) {
            Ok(mut sol) => {
                complete_solution(inst, &mut sol);
                Ok(sol)
            }
            Err(mut e) if e.kind == FailureKind::BudgetExhausted => {
                // The partially-matched solution is still worth
                // repairing: it may be the best artifact the caller
                // gets before degrading to a pure greedy plan.
                if let Some(sol) = e.partial.as_mut() {
                    complete_solution(inst, sol);
                }
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Runs the MW fractional solver under the tighter of its own
    /// configured budget and the pipeline's remaining allowance.
    fn mw_within(
        &self,
        inst: &GapInstance,
        remaining: SolveBudget,
    ) -> Result<crate::FractionalSolution, SolveError<GapSolution>> {
        let mut packing = self.config.packing.clone();
        packing.budget = packing.budget.min(remaining);
        mw_fractional(inst, &packing).map_err(SolveError::discard_partial)
    }
}

/// Post-rounding repair: enforce the ST load bound, then greedily place
/// leftover jobs within strict capacity.
fn complete_solution(inst: &GapInstance, sol: &mut GapSolution) {
    enforce_st_load_bound(inst, sol);
    // Greedy completion for any leftover job, within the ST load
    // slack (capacity + the job's own time), preferring cheap pairs.
    let leftovers = sol.unassigned_jobs();
    for j in leftovers {
        let mut best: Option<(usize, f64, f64)> = None;
        for (i, c, t) in inst.allowed_triples(j) {
            if sol.loads[i] + t <= inst.capacity(i) + 1e-9
                && best.is_none_or(|(_, bc, _)| c < bc)
            {
                best = Some((i, c, t));
            }
        }
        if let Some((i, c, t)) = best {
            sol.assignment[j] = Some(i);
            sol.loads[i] += t;
            sol.cost += c;
        }
    }
}

/// Enforces the Shmoys–Tardos load guarantee `load_i ≤ T_i + max_j
/// p_{i,j}` on the rounded solution.
///
/// For a *feasible* fractional input the rounding satisfies this by
/// construction and the pass is a no-op. When the fractional stage had
/// to run on an infeasible instance (MW fallback), machines can end up
/// arbitrarily overloaded; we evict the most expensive (lowest-utility,
/// in the GEPC reduction) jobs until the bound holds, leaving them for
/// the greedy completion pass (which respects strict capacity).
fn enforce_st_load_bound(inst: &GapInstance, sol: &mut GapSolution) {
    // One pass over the assignment builds every machine's job list
    // (ascending job ids); the eviction loops then never rescan the
    // full assignment, keeping this O(assigned + evictions·list).
    let mut on_machine: Vec<Vec<usize>> = vec![Vec::new(); inst.n_machines()];
    for (j, &mi) in sol.assignment.iter().enumerate() {
        if let Some(i) = mi {
            on_machine[i].push(j);
        }
    }
    for (i, on_i) in on_machine.into_iter().enumerate() {
        let mut on_i = on_i;
        loop {
            let max_p = on_i
                .iter()
                .map(|&j| inst.time(i, j))
                .fold(0.0f64, f64::max);
            if sol.loads[i] <= inst.capacity(i) + max_p + 1e-9 {
                break;
            }
            // Evict the most expensive job on this machine; `>=` over
            // the ascending list keeps the largest job id among cost
            // ties, matching the stable sort-and-take-last this
            // replaced.
            let mut victim: Option<(usize, f64)> = None;
            for (k, &j) in on_i.iter().enumerate() {
                let c = inst.cost(i, j);
                if victim.is_none_or(|(_, bc)| c >= bc) {
                    victim = Some((k, c));
                }
            }
            let Some((k, _)) = victim else {
                break;
            };
            let j = on_i.remove(k);
            sol.assignment[j] = None;
            sol.loads[i] -= inst.time(i, j);
            sol.cost -= inst.cost(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy;

    fn random_instance(m: usize, n: usize, seed: u64, cap_scale: f64) -> GapInstance {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let costs: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let times: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| rng.gen_range(0.5..2.0)).collect())
            .collect();
        let caps: Vec<f64> = (0..m)
            .map(|_| rng.gen_range(1.0..3.0) * cap_scale)
            .collect();
        GapInstance::from_matrices(costs, times, caps)
    }

    #[test]
    fn simplex_pipeline_beats_or_matches_greedy() {
        for seed in 0..5 {
            let g = random_instance(4, 8, seed, 3.0);
            let lp_sol = GapSolver::new(GapConfig {
                method: FractionalMethod::Simplex,
                ..Default::default()
            })
            .solve(&g)
            .unwrap();
            let greedy_sol = greedy::greedy_assign(&g);
            if lp_sol.is_complete() && greedy_sol.is_complete() {
                // LP + ST rounding is cost-optimal up to the fractional
                // bound; greedy has no guarantee. Allow small numeric slack.
                assert!(
                    lp_sol.cost <= greedy_sol.cost + 0.75,
                    "seed {seed}: lp {} vs greedy {}",
                    lp_sol.cost,
                    greedy_sol.cost
                );
            }
        }
    }

    #[test]
    fn rounding_cost_within_fractional_bound() {
        for seed in 10..16 {
            let g = random_instance(3, 9, seed, 4.0);
            let sol = GapSolver::new(GapConfig {
                method: FractionalMethod::Simplex,
                ..Default::default()
            })
            .solve(&g)
            .unwrap();
            if let Some(fc) = sol.fractional_cost {
                if sol.is_complete() {
                    assert!(sol.cost <= fc + 1e-6, "seed {seed}: {} > {fc}", sol.cost);
                }
            }
        }
    }

    #[test]
    fn exact_matches_pipeline_on_tiny_instances() {
        for seed in 20..30 {
            let g = random_instance(3, 6, seed, 5.0);
            let exact = crate::exact::branch_and_bound(&g).ok();
            let sol = GapSolver::default().solve(&g).unwrap();
            if let Some(e) = exact {
                assert!(sol.is_complete());
                // ST rounding cost ≤ fractional ≤ exact optimum.
                assert!(
                    sol.cost <= e.cost + 1e-6,
                    "seed {seed}: pipeline {} vs exact {}",
                    sol.cost,
                    e.cost
                );
            }
        }
    }

    #[test]
    fn auto_switches_to_mw_for_large_instances() {
        let g = random_instance(20, 30, 99, 10.0);
        let solver = GapSolver::new(GapConfig {
            auto_simplex_limit: 10, // force MW
            ..Default::default()
        });
        let sol = solver.solve(&g).unwrap();
        assert!(sol.is_complete());
        assert!(sol.fractional_cost.is_some());
    }

    #[test]
    fn mw_pipeline_solution_quality() {
        let g = random_instance(6, 18, 7, 4.0);
        let mw = GapSolver::new(GapConfig {
            method: FractionalMethod::MultiplicativeWeights,
            ..Default::default()
        })
        .solve(&g)
        .unwrap();
        let lp = GapSolver::new(GapConfig {
            method: FractionalMethod::Simplex,
            ..Default::default()
        })
        .solve(&g)
        .unwrap();
        assert!(mw.is_complete());
        assert!(lp.is_complete());
        // MW is approximate; require it within a generous constant of LP.
        assert!(mw.cost <= lp.cost + 0.25 * g.n_jobs() as f64);
    }

    #[test]
    fn infeasible_instance_best_effort() {
        // Far more work than capacity: some jobs must stay unassigned,
        // but assigned jobs never break the ST load bound.
        let g = GapInstance::from_matrices(
            vec![vec![0.5; 6]],
            vec![vec![1.0; 6]],
            vec![2.0],
        );
        let sol = GapSolver::default().solve(&g).unwrap();
        assert!(!sol.is_complete());
        assert!(sol.loads[0] <= 2.0 + 1.0 + 1e-9);
    }

    #[test]
    fn poisoned_instance_is_bad_input() {
        let g = GapInstance::new(3, 2, vec![1.0]);
        let err = GapSolver::default().solve(&g).unwrap_err();
        assert_eq!(err.kind, FailureKind::BadInput);
        assert_eq!(err.stage, STAGE);
    }

    #[test]
    fn exhausted_time_budget_is_typed() {
        let g = random_instance(6, 18, 3, 4.0);
        // A zero allowance is pre-expired by construction, so the
        // first budget check inside solve() trips deterministically —
        // no sleeping against clock granularity.
        let solver = GapSolver::new(GapConfig {
            budget: SolveBudget::from_time_limit(std::time::Duration::ZERO),
            ..Default::default()
        });
        let err = solver.solve(&g).unwrap_err();
        assert_eq!(err.kind, FailureKind::BudgetExhausted);
    }

    #[test]
    fn generous_budget_solves_normally() {
        let g = random_instance(4, 8, 11, 3.0);
        let solver = GapSolver::new(GapConfig {
            budget: SolveBudget::from_time_limit(std::time::Duration::from_secs(30)),
            ..Default::default()
        });
        let sol = solver.solve(&g).unwrap();
        assert!(sol.is_complete());
    }
}
