//! Exact LP relaxation of GAP via the dense simplex in `epplan-lp`.
//!
//! Variables `x_{i,j} ≥ 0` for every *allowed* machine–job pair;
//! `Σ_i x_{i,j} = 1` per assignable job; `Σ_j p_{i,j} x_{i,j} ≤ T_i`
//! per machine. Jobs with no allowed machine are reported in
//! [`FractionalSolution::unassigned`] rather than making the whole LP
//! infeasible — the ξ-GEPC layer turns those into lower-bound
//! shortfall diagnostics.
//!
//! Failures follow the `epplan-solve` contract: a poisoned instance is
//! `BadInput`, an over-constrained system is `Infeasible`, and a pivot
//! loop stopped by a [`SolveBudget`] is `BudgetExhausted` carrying the
//! feasible point reached so far as a partial fractional solution.

use crate::{FractionalSolution, GapInstance};
use epplan_lp::{Problem, Relation};
use epplan_solve::{SolveBudget, SolveError};

/// Solves the LP relaxation exactly with no budget. Returns the
/// fractional solution (with `unassigned` holding jobs that no machine
/// can take) or a typed error when the remaining system is infeasible.
pub fn lp_relaxation(inst: &GapInstance) -> Result<FractionalSolution, SolveError<FractionalSolution>> {
    lp_relaxation_with_budget(inst, SolveBudget::UNLIMITED)
}

/// [`lp_relaxation`] under a [`SolveBudget`] spent one pivot per
/// iteration. On `BudgetExhausted` the error carries the last feasible
/// point as a partial fractional solution when phase 1 completed.
pub fn lp_relaxation_with_budget(
    inst: &GapInstance,
    budget: SolveBudget,
) -> Result<FractionalSolution, SolveError<FractionalSolution>> {
    if let Some(defect) = inst.defect() {
        return Err(SolveError::bad_input(
            "gap.lp_relax",
            format!("malformed GAP instance: {defect}"),
        ));
    }
    let mut sp = epplan_obs::span("gap.lp_relax");
    let m = inst.n_machines();
    let n = inst.n_jobs();
    let unassignable = inst.unassignable_jobs();

    // Sparse variable numbering over allowed pairs only, machine-major
    // ((i, j) ascending) — the same order the old dense `i × j` scan
    // enumerated, so the simplex sees identical columns and pivots. The
    // pairs come out of the candidate iterator job-major; one sort on
    // the integer key restores machine-major without ever allocating an
    // m × n table.
    let mut pairs: Vec<(usize, usize, f64, f64)> = Vec::new();
    for j in 0..n {
        for (i, c, t) in inst.allowed_triples(j) {
            pairs.push((i, j, c, t));
        }
    }
    pairs.sort_unstable_by_key(|&(i, j, _, _)| (i, j));

    let mut lp = Problem::minimize(pairs.len());
    let obj: Vec<(usize, f64)> = pairs
        .iter()
        .enumerate()
        .map(|(v, &(_, _, c, _))| (v, c))
        .collect();
    lp.set_objective(&obj);

    // Assignment constraints for assignable jobs; machine-major pair
    // order makes each job's variable list i-ascending for free.
    let mut job_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (v, &(_, j, _, _)) in pairs.iter().enumerate() {
        job_rows[j].push((v, 1.0));
    }
    for (j, row) in job_rows.into_iter().enumerate() {
        if unassignable.contains(&j) {
            continue;
        }
        lp.add_constraint(&row, Relation::Eq, 1.0);
    }
    // Capacity constraints: contiguous same-machine runs of the sorted
    // pairs (machines ascending, jobs ascending within each run).
    let mut pos = 0usize;
    while pos < pairs.len() {
        let i = pairs[pos].0;
        let mut end = pos;
        let mut row: Vec<(usize, f64)> = Vec::new();
        while end < pairs.len() && pairs[end].0 == i {
            row.push((end, pairs[end].3));
            end += 1;
        }
        pos = end;
        lp.add_constraint(&row, Relation::Le, inst.capacity(i));
    }

    let extract = |x: &[f64]| {
        let mut frac = FractionalSolution::zero(m, n);
        for (v, &(i, j, _, _)) in pairs.iter().enumerate() {
            let val = x[v];
            if val > 1e-12 {
                frac.set(i, j, val.min(1.0));
            }
        }
        frac.unassigned = unassignable.clone();
        frac
    };

    // Deterministic fault injection in front of the simplex dispatch
    // (the pivot loop has its own `lp.simplex.pivot` site).
    if let Some(action) = epplan_fault::point("gap.lp_relax.solve") {
        return Err(SolveError::from_fault(
            "gap.lp_relax",
            "gap.lp_relax.solve",
            action,
        ));
    }
    match lp.solve_with_budget(budget) {
        Ok(sol) => {
            sp.add_iters(sol.pivots);
            Ok(extract(&sol.x))
        }
        Err(e) => {
            // A partial simplex point satisfies all constraints
            // (including the per-job equalities), so it converts to a
            // valid — merely suboptimal — fractional solution.
            let partial = e.partial.as_ref().map(|p| extract(&p.x));
            let mut out = e.discard_partial();
            if let Some(frac) = partial {
                out = out.with_partial(frac);
            }
            Err(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epplan_solve::FailureKind;

    #[test]
    fn relaxation_of_easy_instance_is_integral() {
        // Plenty of capacity: each job goes wholly to its cheapest machine.
        let g = GapInstance::from_matrices(
            vec![vec![1.0, 5.0], vec![5.0, 1.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![10.0, 10.0],
        );
        let x = lp_relaxation(&g).unwrap();
        assert!(x.check(&g, 1e-7).is_ok());
        assert!((x.cost(&g) - 2.0).abs() < 1e-7);
        assert!((x.get(0, 0) - 1.0).abs() < 1e-7);
        assert!((x.get(1, 1) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn capacity_forces_split_or_reroute() {
        // Machine 0 is cheap but can hold only one unit-time job.
        let g = GapInstance::from_matrices(
            vec![vec![0.0, 0.0], vec![10.0, 10.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![1.0, 10.0],
        );
        let x = lp_relaxation(&g).unwrap();
        assert!(x.check(&g, 1e-7).is_ok());
        let loads = x.loads(&g);
        assert!(loads[0] <= 1.0 + 1e-7);
        // One job's worth of mass must be on machine 1 → cost 10.
        assert!((x.cost(&g) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn fractional_cost_lower_bounds_integral() {
        let g = GapInstance::from_matrices(
            vec![vec![1.0, 4.0, 2.0], vec![2.0, 1.0, 3.0]],
            vec![vec![1.0, 2.0, 1.5], vec![2.0, 1.0, 1.0]],
            vec![2.5, 2.0],
        );
        let x = lp_relaxation(&g).unwrap();
        let exact = crate::exact::branch_and_bound(&g).unwrap();
        assert!(x.cost(&g) <= exact.cost + 1e-7);
    }

    #[test]
    fn infeasible_capacities() {
        let g = GapInstance::from_matrices(
            vec![vec![1.0], vec![1.0]],
            vec![vec![5.0], vec![5.0]],
            vec![1.0, 1.0], // job needs 5, both capacities are 1
        );
        // The job is not allowed anywhere → reported unassigned, LP trivial.
        let x = lp_relaxation(&g).unwrap();
        assert_eq!(x.unassigned, vec![0]);
    }

    #[test]
    fn genuinely_infeasible_lp() {
        // Machine 1 forbidden for both jobs (p=1 > 0.5); machine 0 can
        // take only one job fractionally (total work 1.8 > cap 0.9).
        let g = GapInstance::from_matrices(
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![vec![0.9, 0.9], vec![1.0, 1.0]],
            vec![0.9, 0.5],
        );
        let err = lp_relaxation(&g).unwrap_err();
        assert_eq!(err.kind, FailureKind::Infeasible);
    }

    #[test]
    fn poisoned_instance_is_bad_input() {
        let g = GapInstance::new(2, 2, vec![1.0]);
        let err = lp_relaxation(&g).unwrap_err();
        assert_eq!(err.kind, FailureKind::BadInput);
        assert_eq!(err.stage, "gap.lp_relax");
    }

    #[test]
    fn budget_exhaustion_surfaces() {
        let g = GapInstance::from_matrices(
            vec![vec![1.0, 4.0, 2.0], vec![2.0, 1.0, 3.0]],
            vec![vec![1.0, 2.0, 1.5], vec![2.0, 1.0, 1.0]],
            vec![2.5, 2.0],
        );
        let err =
            lp_relaxation_with_budget(&g, SolveBudget::from_iteration_cap(1)).unwrap_err();
        assert_eq!(err.kind, FailureKind::BudgetExhausted);
    }
}
