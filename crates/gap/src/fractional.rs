//! Fractional (relaxed) GAP solutions shared by the exact LP and the
//! multiplicative-weights solvers.

use crate::GapInstance;

/// A fractional assignment: `x(i, j) ∈ [0, 1]` with `Σ_i x(i, j) = 1`
/// for every job `j` that is fractionally assignable.
///
/// Storage is job-major sparse: each job keeps its machine support as a
/// machine-ascending `(machine, fraction)` list. A job's support is
/// small (the LP's basic solutions are sparse; the MW average touches
/// at most one machine per round), so every operation is
/// O(support) — never O(machines × jobs), which matters once the GEPC
/// reduction puts 10⁵–10⁶ machines in play.
#[derive(Debug, Clone)]
pub struct FractionalSolution {
    n_machines: usize,
    n_jobs: usize,
    /// Per-job support, machine-ascending `(machine, fraction)` pairs.
    x: Vec<Vec<(u32, f64)>>,
    /// Jobs that could not be (fractionally) assigned at all.
    pub unassigned: Vec<usize>,
}

impl FractionalSolution {
    /// Creates an all-zero solution.
    pub fn zero(n_machines: usize, n_jobs: usize) -> Self {
        FractionalSolution {
            n_machines,
            n_jobs,
            x: vec![Vec::new(); n_jobs],
            unassigned: Vec::new(),
        }
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.n_machines
    }

    /// Number of jobs.
    pub fn n_jobs(&self) -> usize {
        self.n_jobs
    }

    /// Machine support of job `j`: machine-ascending
    /// `(machine, fraction)` pairs with non-zero fractions.
    #[inline]
    pub fn support(&self, job: usize) -> &[(u32, f64)] {
        &self.x[job]
    }

    /// Fraction of job `j` on machine `i`.
    #[inline]
    pub fn get(&self, machine: usize, job: usize) -> f64 {
        let row = &self.x[job];
        match row.binary_search_by_key(&(machine as u32), |&(i, _)| i) {
            Ok(k) => row[k].1,
            Err(_) => 0.0,
        }
    }

    /// Sets the fraction of job `j` on machine `i` (zero removes the
    /// entry).
    #[inline]
    pub fn set(&mut self, machine: usize, job: usize, v: f64) {
        let row = &mut self.x[job];
        match row.binary_search_by_key(&(machine as u32), |&(i, _)| i) {
            Ok(k) => {
                // epplan-lint: allow(float/exact-eq) — sparse storage: exact 0.0 means "absent", no tolerance wanted
                if v == 0.0 {
                    row.remove(k);
                } else {
                    row[k].1 = v;
                }
            }
            Err(k) => {
                // epplan-lint: allow(float/exact-eq) — sparse storage: exact 0.0 means "absent", no tolerance wanted
                if v != 0.0 {
                    row.insert(k, (machine as u32, v));
                }
            }
        }
    }

    /// Adds to the fraction of job `j` on machine `i`.
    #[inline]
    pub fn add(&mut self, machine: usize, job: usize, v: f64) {
        let row = &mut self.x[job];
        match row.binary_search_by_key(&(machine as u32), |&(i, _)| i) {
            Ok(k) => row[k].1 += v,
            Err(k) => row.insert(k, (machine as u32, v)),
        }
    }

    /// Scales every fraction by `f` (used to average MW iterates).
    pub fn scale(&mut self, f: f64) {
        for row in &mut self.x {
            for (_, v) in row.iter_mut() {
                *v *= f;
            }
        }
    }

    /// Fractional cost `Σ c(i,j) · x(i,j)` over non-forbidden pairs.
    pub fn cost(&self, inst: &GapInstance) -> f64 {
        let mut total = 0.0;
        for (j, row) in self.x.iter().enumerate() {
            for &(i, v) in row {
                if v > 0.0 {
                    total += v * inst.cost(i as usize, j);
                }
            }
        }
        total
    }

    /// Per-machine fractional loads `Σ p(i,j) · x(i,j)`. Each machine's
    /// sum accumulates in ascending job order, so the floats are
    /// independent of thread count and storage layout.
    pub fn loads(&self, inst: &GapInstance) -> Vec<f64> {
        let mut loads = vec![0.0; self.n_machines];
        for (j, row) in self.x.iter().enumerate() {
            for &(i, v) in row {
                loads[i as usize] += v * inst.time(i as usize, j);
            }
        }
        loads
    }

    /// Total assigned fraction of job `j` (should be 1 for assigned
    /// jobs, 0 for unassigned ones).
    pub fn job_mass(&self, job: usize) -> f64 {
        self.x[job].iter().map(|&(_, v)| v).sum()
    }

    /// Keeps only each job's `k` largest machine fractions,
    /// renormalizing so job masses stay at 1.
    ///
    /// The multiplicative-weights solver can spread a job's mass over
    /// many machines; the Shmoys–Tardos rounding then builds a slot
    /// graph whose edge count (and min-cost-flow time) grows with that
    /// support. Pruning to the dominant machines changes the fractional
    /// cost only marginally (the dropped tail carries little mass) and
    /// keeps the rounding near-linear. Exact LP solutions are basic and
    /// already sparse, so pruning is a no-op for them in practice.
    ///
    /// `k = 0` would destroy every job's mass, so it is treated as a
    /// no-op (pruning disabled) rather than a panic.
    pub fn prune_top_k(&mut self, k: usize) {
        if k == 0 {
            return;
        }
        for j in 0..self.n_jobs {
            if self.x[j].len() <= k || self.unassigned.contains(&j) {
                continue;
            }
            let mass = self.job_mass(j);
            let mut fracs: Vec<(u32, f64)> = self
                .x[j]
                .iter()
                .copied()
                .filter(|&(_, v)| v > 0.0)
                .collect();
            if fracs.len() <= k {
                continue;
            }
            fracs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let keep: f64 = fracs[..k].iter().map(|&(_, v)| v).sum();
            if keep <= 0.0 {
                continue;
            }
            let scale = mass / keep;
            fracs.truncate(k);
            fracs.sort_by_key(|&(i, _)| i);
            for (_, v) in fracs.iter_mut() {
                *v *= scale;
            }
            self.x[j] = fracs;
        }
    }

    /// Validates the structural invariants within `tol`:
    /// non-negativity, job masses ≈ 1 (or 0 for unassigned), and zero
    /// mass on forbidden pairs.
    pub fn check(&self, inst: &GapInstance, tol: f64) -> Result<(), String> {
        for (j, row) in self.x.iter().enumerate() {
            for &(i, v) in row {
                if v < -tol {
                    return Err("negative fraction".into());
                }
                if v > tol && !inst.allowed(i as usize, j) {
                    return Err(format!("mass on forbidden pair ({i}, {j})"));
                }
            }
            let mass = self.job_mass(j);
            let expect = if self.unassigned.contains(&j) { 0.0 } else { 1.0 };
            if (mass - expect).abs() > tol {
                return Err(format!("job {j} mass {mass}, expected {expect}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> GapInstance {
        GapInstance::from_matrices(
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            vec![vec![1.0, 2.0], vec![2.0, 1.0]],
            vec![10.0, 10.0],
        )
    }

    #[test]
    fn cost_and_loads() {
        let g = inst();
        let mut x = FractionalSolution::zero(2, 2);
        x.set(0, 0, 0.5);
        x.set(1, 0, 0.5);
        x.set(0, 1, 1.0);
        assert!((x.cost(&g) - (0.5 + 1.5 + 2.0)).abs() < 1e-12);
        assert_eq!(x.loads(&g), vec![0.5 + 2.0, 1.0]);
        assert!(x.check(&g, 1e-9).is_ok());
    }

    #[test]
    fn support_is_machine_ascending_and_sparse() {
        let mut x = FractionalSolution::zero(3, 1);
        x.add(2, 0, 0.25);
        x.add(0, 0, 0.5);
        x.add(2, 0, 0.25);
        assert_eq!(x.support(0), &[(0, 0.5), (2, 0.5)]);
        assert_eq!(x.get(1, 0), 0.0);
        x.set(0, 0, 0.0);
        assert_eq!(x.support(0), &[(2, 0.5)]);
    }

    #[test]
    fn check_rejects_bad_mass() {
        let g = inst();
        let mut x = FractionalSolution::zero(2, 2);
        x.set(0, 0, 0.7); // job 0 mass 0.7, job 1 mass 0
        assert!(x.check(&g, 1e-9).is_err());
    }

    #[test]
    fn check_rejects_forbidden_mass() {
        let mut g = inst();
        g.forbid(0, 0);
        let mut x = FractionalSolution::zero(2, 2);
        x.set(0, 0, 1.0);
        x.set(0, 1, 1.0);
        assert!(x.check(&g, 1e-9).is_err());
    }

    #[test]
    fn prune_keeps_mass_and_top_fractions() {
        let g = inst();
        let mut x = FractionalSolution::zero(2, 2);
        x.set(0, 0, 0.7);
        x.set(1, 0, 0.3);
        x.set(0, 1, 1.0);
        x.prune_top_k(1);
        assert!((x.job_mass(0) - 1.0).abs() < 1e-12);
        assert_eq!(x.get(1, 0), 0.0);
        assert!((x.get(0, 0) - 1.0).abs() < 1e-12);
        assert_eq!(x.get(0, 1), 1.0);
        assert!(x.check(&g, 1e-9).is_ok());
    }

    #[test]
    fn prune_noop_when_support_small() {
        let mut x = FractionalSolution::zero(3, 1);
        x.set(0, 0, 0.5);
        x.set(1, 0, 0.5);
        let before = x.clone();
        x.prune_top_k(2);
        assert_eq!(x.get(0, 0), before.get(0, 0));
        assert_eq!(x.get(1, 0), before.get(1, 0));
    }

    #[test]
    fn unassigned_jobs_expect_zero_mass() {
        let g = inst();
        let mut x = FractionalSolution::zero(2, 2);
        x.set(0, 0, 1.0);
        x.unassigned = vec![1];
        assert!(x.check(&g, 1e-9).is_ok());
    }
}
