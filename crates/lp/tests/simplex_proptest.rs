//! Property tests for the simplex solver.
//!
//! Optimality is hard to verify generically, so these tests check
//! invariants that must hold for *every* solve:
//! * a successful (`Ok`) result is primal-feasible;
//! * the optimum of a maximization is ≥ the objective at any feasible
//!   point we can construct (here: the origin, feasible for `≤` rows
//!   with non-negative rhs);
//! * for box-constrained problems the analytic optimum is matched;
//! * weak duality on random transportation-like programs.

use epplan_lp::{Problem, Relation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random `max cᵀx  s.t.  Ax ≤ b` with `b ≥ 0` is feasible (origin)
    /// and, when each column has some positive row coefficient, bounded.
    #[test]
    fn le_programs_feasible_and_dominate_origin(
        n in 1usize..6,
        m in 1usize..6,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut p = Problem::maximize(n);
        let obj: Vec<(usize, f64)> =
            (0..n).map(|j| (j, rng.gen_range(-2.0..5.0))).collect();
        p.set_objective(&obj);
        for _ in 0..m {
            let row: Vec<(usize, f64)> =
                (0..n).map(|j| (j, rng.gen_range(0.1..3.0))).collect();
            p.add_constraint(&row, Relation::Le, rng.gen_range(0.0..10.0));
        }
        let s = p.solve();
        prop_assert!(s.is_ok(), "expected optimal, got {:?}", s.err());
        let s = s.unwrap();
        prop_assert!(p.is_feasible(&s.x, 1e-6));
        prop_assert!(s.objective >= -1e-7); // origin achieves 0
    }

    /// Box-constrained LP has the analytic optimum
    /// `Σ max(c_j, 0) · u_j` for maximization.
    #[test]
    fn box_constrained_matches_analytic(
        cs in prop::collection::vec(-5.0..5.0f64, 1..8),
        us in prop::collection::vec(0.0..10.0f64, 8),
    ) {
        let n = cs.len();
        let mut p = Problem::maximize(n);
        let obj: Vec<(usize, f64)> = cs.iter().cloned().enumerate().collect();
        p.set_objective(&obj);
        for (j, &u) in us.iter().take(n).enumerate() {
            p.add_upper_bound(j, u);
        }
        let s = p.solve();
        prop_assert!(s.is_ok(), "expected optimal, got {:?}", s.err());
        let s = s.unwrap();
        let analytic: f64 = cs.iter().zip(&us).map(|(c, u)| c.max(0.0) * u).sum();
        prop_assert!((s.objective - analytic).abs() < 1e-6,
            "got {} want {}", s.objective, analytic);
    }

    /// Balanced transportation problems are always feasible and the LP
    /// optimum is sandwiched between 0 and the cost of the "everything
    /// via cheapest edge per demand" upper bound.
    #[test]
    fn transportation_bounds(
        ns in 1usize..4,
        nd in 1usize..4,
        seed in 0u64..500,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
        let supply: Vec<f64> = (0..ns).map(|_| rng.gen_range(1.0..5.0)).collect();
        let total: f64 = supply.iter().sum();
        // Split total across demands.
        let mut demand = vec![0.0; nd];
        let mut rest = total;
        for d in demand.iter_mut().take(nd - 1) {
            *d = rng.gen_range(0.0..rest);
            rest -= *d;
        }
        demand[nd - 1] = rest;
        let cost: Vec<Vec<f64>> = (0..ns)
            .map(|_| (0..nd).map(|_| rng.gen_range(0.5..4.0)).collect())
            .collect();

        let var = |i: usize, j: usize| i * nd + j;
        let mut p = Problem::minimize(ns * nd);
        let obj: Vec<(usize, f64)> = (0..ns)
            .flat_map(|i| (0..nd).map(move |j| (var(i, j), 0.0)))
            .collect();
        let mut obj = obj;
        for i in 0..ns {
            for j in 0..nd {
                obj[var(i, j)] = (var(i, j), cost[i][j]);
            }
        }
        p.set_objective(&obj);
        for (i, s) in supply.iter().enumerate() {
            let row: Vec<(usize, f64)> = (0..nd).map(|j| (var(i, j), 1.0)).collect();
            p.add_constraint(&row, Relation::Eq, *s);
        }
        for (j, d) in demand.iter().enumerate() {
            let row: Vec<(usize, f64)> = (0..ns).map(|i| (var(i, j), 1.0)).collect();
            p.add_constraint(&row, Relation::Eq, *d);
        }
        let s = p.solve();
        prop_assert!(s.is_ok(), "expected optimal, got {:?}", s.err());
        let s = s.unwrap();
        prop_assert!(p.is_feasible(&s.x, 1e-5));
        let max_cost = cost.iter().flatten().cloned().fold(0.0f64, f64::max);
        prop_assert!(s.objective <= total * max_cost + 1e-6);
        prop_assert!(s.objective >= -1e-9);
    }
}
