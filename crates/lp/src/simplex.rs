use epplan_solve::{BudgetGuard, SolveBudget, SolveError};

use crate::problem::{Problem, Relation};

/// Result of a successful simplex run (an optimal basic feasible
/// solution). Failed runs are reported through [`SolveError`]; a
/// budget-exhausted phase-2 run attaches the best feasible point found
/// as the error's partial artifact.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Values of the original decision variables.
    pub x: Vec<f64>,
    /// Objective value **in the problem's original sense** (i.e. the
    /// maximum for maximization problems).
    pub objective: f64,
    /// Number of simplex pivots performed across both phases.
    pub pivots: u64,
    /// `true` when the final reduced-cost row was re-scanned after the
    /// optimal exit and every enterable column was confirmed
    /// non-negative — the cheap dual-feasibility certificate that the
    /// returned point is LP-optimal. Always `false` on the partial
    /// artifact of a budget-exhausted run.
    pub dual_feasible: bool,
}

const EPS: f64 = 1e-9;

/// Pipeline-stage label used in this solver's errors.
const STAGE: &str = "lp.simplex";

/// Tableau rows per parallel elimination chunk (each row is a full
/// `O(w)` axpy, so chunks can be small).
const ELIM_MIN_CHUNK: usize = 8;

/// Columns per pricing chunk / rows per ratio-test chunk: per-element
/// work is one comparison, so small tableaus stay on the inline path.
const SCAN_MIN_CHUNK: usize = 2048;

/// How a run of simplex iterations ended (budget failures travel in
/// the `Err` channel).
enum IterEnd {
    Optimal,
    Unbounded,
}

/// Dense simplex tableau with an extra objective row.
struct Tableau {
    /// `(m + 1) × (w + 1)` row-major; row `m` is the reduced-cost row,
    /// column `w` is the right-hand side.
    t: Vec<f64>,
    m: usize,
    w: usize,
    basis: Vec<usize>,
    /// Columns allowed to enter the basis (artificials are barred in
    /// phase 2).
    enterable: Vec<bool>,
    /// Enforces the pivot cap and the wall-clock deadline.
    guard: BudgetGuard,
    /// Pivot count at which Dantzig pricing yields to Bland's rule
    /// (anti-cycling).
    bland_after: u64,
    bland: bool,
    /// Reusable copy of the normalized pivot row, read concurrently by
    /// elimination workers while `t`'s other rows are written.
    scratch: Vec<f64>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.t[r * (self.w + 1) + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.t[r * (self.w + 1) + c] = v;
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        let stride = self.w + 1;
        let piv = self.at(pr, pc);
        debug_assert!(piv.abs() > EPS);
        let inv = 1.0 / piv;
        for c in 0..stride {
            self.t[pr * stride + c] *= inv;
        }
        self.set(pr, pc, 1.0);
        // Elimination, parallel over rows. Workers read the normalized
        // pivot row from a snapshot (they cannot alias it while other
        // rows are written) and each row's axpy runs left-to-right
        // exactly as in the serial form, so every float is identical.
        self.scratch.clear();
        self.scratch
            .extend_from_slice(&self.t[pr * stride..(pr + 1) * stride]);
        let pivot_row = &self.scratch;
        let mut rows: Vec<&mut [f64]> = self.t.chunks_mut(stride).collect();
        epplan_par::par_chunks_for_each_mut(&mut rows, ELIM_MIN_CHUNK, |start, chunk| {
            for (k, row) in chunk.iter_mut().enumerate() {
                if start + k == pr {
                    continue;
                }
                let f = row[pc];
                if f.abs() <= EPS {
                    row[pc] = 0.0;
                    continue;
                }
                for (c, v) in row.iter_mut().enumerate() {
                    *v -= f * pivot_row[c];
                }
                row[pc] = 0.0;
            }
        });
        self.basis[pr] = pc;
        if self.guard.iterations() > self.bland_after {
            self.bland = true;
        }
    }

    /// Runs simplex iterations until optimal, unbounded, or the budget
    /// guard trips (pivot cap or wall-clock deadline).
    fn iterate(&mut self) -> Result<IterEnd, SolveError<()>> {
        loop {
            // Deterministic fault injection. The site sits in this
            // serial loop head (never inside the parallel scans), so
            // its hit count is identical at any thread count.
            if let Some(action) = epplan_fault::point("lp.simplex.pivot") {
                return Err(SolveError::from_fault(STAGE, "lp.simplex.pivot", action));
            }
            self.guard.tick(STAGE)?;
            let stride = self.w + 1;
            // Entering column: Dantzig (most negative reduced cost) or
            // Bland (first negative) when cycling is suspected.
            // Parallel over column chunks; the in-order merge keeps the
            // earliest qualifying index, matching the serial scan.
            let obj = &self.t[self.m * stride..self.m * stride + self.w];
            let enterable = &self.enterable;
            let enter: Option<usize> = if self.bland {
                epplan_par::par_range_reduce(
                    self.w,
                    SCAN_MIN_CHUNK,
                    |cols| cols.into_iter().find(|&c| enterable[c] && obj[c] < -EPS),
                    |a, b| a.or(b),
                )
                .flatten()
            } else {
                epplan_par::par_range_reduce(
                    self.w,
                    SCAN_MIN_CHUNK,
                    |cols| {
                        let mut best = -EPS;
                        let mut e = None;
                        for c in cols {
                            if enterable[c] {
                                let d = obj[c];
                                if d < best {
                                    best = d;
                                    e = Some(c);
                                }
                            }
                        }
                        (best, e)
                    },
                    |a, b| if b.0 < a.0 { b } else { a },
                )
                .and_then(|(_, e)| e)
            };
            let Some(pc) = enter else {
                return Ok(IterEnd::Optimal);
            };
            // Leaving row: minimum ratio, Bland tie-break on basis
            // index. Chunk-local fold plus in-order merge applies the
            // same `better` predicate, so the winner only depends on
            // the fixed chunk boundaries — never the thread count.
            let t = &self.t;
            let basis = &self.basis;
            let better = |ratio: f64, row: usize, best: f64, cur: Option<usize>| {
                ratio < best - EPS
                    || (ratio < best + EPS
                        && cur.is_some_and(|lr| basis[row] < basis[lr]))
            };
            let leave: Option<usize> = epplan_par::par_range_reduce(
                self.m,
                SCAN_MIN_CHUNK,
                |rows| {
                    let mut leave: Option<usize> = None;
                    let mut best_ratio = f64::INFINITY;
                    for r in rows {
                        let a = t[r * stride + pc];
                        if a > EPS {
                            let ratio = t[r * stride + self.w] / a;
                            if better(ratio, r, best_ratio, leave) {
                                best_ratio = ratio;
                                leave = Some(r);
                            }
                        }
                    }
                    (best_ratio, leave)
                },
                |a, b| match b.1 {
                    Some(br) if better(b.0, br, a.0, a.1) => b,
                    _ => a,
                },
            )
            .and_then(|(_, l)| l);
            let Some(pr) = leave else {
                return Ok(IterEnd::Unbounded);
            };
            self.pivot(pr, pc);
        }
    }

    /// Independent re-scan of the reduced-cost row: `true` when every
    /// enterable column's reduced cost is ≥ −EPS (and none is NaN) —
    /// dual feasibility, i.e. a certificate that the current basis is
    /// optimal. [`Tableau::iterate`]'s optimal exit implies this by
    /// construction; re-checking after the fact guards against
    /// poisoned tableau values that compare as "not negative".
    fn verify_dual_feasible(&self) -> bool {
        let stride = self.w + 1;
        let obj = &self.t[self.m * stride..self.m * stride + self.w];
        self.enterable
            .iter()
            .zip(obj)
            .all(|(&open, &d)| !open || d >= -EPS)
    }

    /// Extracts the values of the first `n` (structural) variables from
    /// the current basis.
    fn extract(&self, n: usize) -> Vec<f64> {
        let mut x = vec![0.0; n];
        for r in 0..self.m {
            if self.basis[r] < n {
                x[self.basis[r]] = self.at(r, self.w).max(0.0);
            }
        }
        x
    }
}

/// Rejects objectives, coefficients and right-hand sides that would
/// poison the tableau arithmetic.
fn validate(problem: &Problem) -> Result<(), SolveError<Solution>> {
    if let Some(defect) = problem.defect() {
        return Err(SolveError::bad_input(
            STAGE,
            format!("malformed problem: {defect}"),
        ));
    }
    if let Some(j) = problem.objective.iter().position(|c| !c.is_finite()) {
        return Err(SolveError::bad_input(
            STAGE,
            format!("objective coefficient for variable {j} is not finite"),
        ));
    }
    for (r, row) in problem.rows.iter().enumerate() {
        if !row.rhs.is_finite() {
            return Err(SolveError::bad_input(
                STAGE,
                format!("right-hand side of row {r} is not finite"),
            ));
        }
        if let Some(&(j, _)) = row.coeffs.iter().find(|&&(_, v)| !v.is_finite()) {
            return Err(SolveError::bad_input(
                STAGE,
                format!("coefficient of variable {j} in row {r} is not finite"),
            ));
        }
    }
    Ok(())
}

/// Solves `problem` with the two-phase simplex method under `budget`.
///
/// Phase 1 minimizes the sum of artificial variables to find a basic
/// feasible solution; phase 2 optimizes the true objective with
/// artificial columns barred from the basis. Redundant rows discovered
/// at the end of phase 1 are dropped.
///
/// The solver always bounds its own work: on top of any caps in
/// `budget`, an internal pivot cap of `200 (m + w) + 2000` guards
/// against pathological cycling, and Bland's rule takes over from
/// Dantzig pricing once half the cap is spent. On
/// [`epplan_solve::FailureKind::BudgetExhausted`] during phase 2 the
/// error carries the current (feasible, possibly suboptimal) point as
/// its partial artifact; budget exhaustion during phase 1 carries
/// nothing because no feasible point exists yet.
pub fn solve_with_budget(
    problem: &Problem,
    budget: SolveBudget,
) -> Result<Solution, SolveError<Solution>> {
    let mut sp = epplan_obs::span("lp.simplex");
    let result = solve_inner(problem, budget);
    // Pivot count for the span: the success/partial artifact carries
    // it; errors without a partial (e.g. infeasible) report none.
    let pivots = match &result {
        Ok(s) => s.pivots,
        Err(e) => e.partial.as_ref().map_or(0, |p| p.pivots),
    };
    sp.add_iters(pivots);
    result
}

fn solve_inner(
    problem: &Problem,
    budget: SolveBudget,
) -> Result<Solution, SolveError<Solution>> {
    validate(problem)?;
    let n = problem.n_vars;
    let m = problem.rows.len();

    // Densify rows, normalizing to non-negative rhs.
    let mut dense: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rels: Vec<Relation> = Vec::with_capacity(m);
    let mut rhs: Vec<f64> = Vec::with_capacity(m);
    for row in &problem.rows {
        let mut a = vec![0.0; n];
        for &(j, v) in &row.coeffs {
            a[j] += v;
        }
        let (a, rel, b) = if row.rhs < 0.0 {
            let flipped = match row.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
            (a.iter().map(|v| -v).collect(), flipped, -row.rhs)
        } else {
            (a, row.relation, row.rhs)
        };
        dense.push(a);
        rels.push(rel);
        rhs.push(b);
    }

    // Column layout: [0, n) original | slacks/surplus | artificials.
    let n_slack = rels
        .iter()
        .filter(|r| !matches!(r, Relation::Eq))
        .count();
    let n_art = rels
        .iter()
        .filter(|r| matches!(r, Relation::Eq | Relation::Ge))
        .count();
    let w = n + n_slack + n_art;

    // The anti-cycling pivot cap is always in force; a caller budget
    // can only tighten it.
    let pivot_cap = (200 * (m + w) + 2000) as u64;
    let effective = budget.min(SolveBudget::from_iteration_cap(pivot_cap));

    let mut tab = Tableau {
        t: vec![0.0; (m + 1) * (w + 1)],
        m,
        w,
        basis: vec![usize::MAX; m],
        enterable: vec![true; w],
        guard: BudgetGuard::new(effective),
        bland_after: effective.max_iterations.unwrap_or(pivot_cap) / 2,
        bland: false,
        scratch: Vec::new(),
    };
    if epplan_obs::metrics_enabled() {
        epplan_obs::gauge_set("lp.par.threads", epplan_par::threads() as f64);
        epplan_obs::gauge_set(
            "lp.par.chunks",
            epplan_par::chunk_count(m + 1, ELIM_MIN_CHUNK) as f64,
        );
    }

    let mut slack_at = n;
    let mut art_at = n + n_slack;
    let art_start = n + n_slack;
    for r in 0..m {
        for (j, &a) in dense[r].iter().enumerate() {
            tab.set(r, j, a);
        }
        tab.set(r, w, rhs[r]);
        match rels[r] {
            Relation::Le => {
                tab.set(r, slack_at, 1.0);
                tab.basis[r] = slack_at;
                slack_at += 1;
            }
            Relation::Ge => {
                tab.set(r, slack_at, -1.0);
                slack_at += 1;
                tab.set(r, art_at, 1.0);
                tab.basis[r] = art_at;
                art_at += 1;
            }
            Relation::Eq => {
                tab.set(r, art_at, 1.0);
                tab.basis[r] = art_at;
                art_at += 1;
            }
        }
    }

    // ---- Phase 1: minimize the sum of artificials.
    if n_art > 0 {
        for c in art_start..w {
            tab.set(m, c, 1.0);
        }
        // Zero out the reduced costs of basic artificials.
        for r in 0..m {
            if tab.basis[r] >= art_start {
                for c in 0..=w {
                    let v = tab.at(m, c) - tab.at(r, c);
                    tab.set(m, c, v);
                }
            }
        }
        let phase1_end = {
            let mut sp = epplan_obs::span("lp.phase1");
            let r = tab.iterate();
            let pivots = tab.guard.iterations();
            sp.add_iters(pivots);
            epplan_obs::counter_add("lp.iterations", pivots);
            r
        };
        match phase1_end {
            Ok(IterEnd::Optimal) => {}
            // No feasible point exists yet, so nothing to attach.
            Err(e) => return Err(e.discard_partial()),
            // Phase 1's objective is bounded below by 0; an unbounded
            // verdict means the tableau arithmetic broke down.
            Ok(IterEnd::Unbounded) => {
                return Err(SolveError::numerical(
                    STAGE,
                    "phase-1 objective reported unbounded (tableau breakdown)",
                ))
            }
        }
        let phase1 = -tab.at(m, w);
        if phase1 > 1e-7 {
            return Err(SolveError::infeasible(
                STAGE,
                format!("phase-1 optimum {phase1:.3e} > 0: constraint system has no feasible point"),
            ));
        }
        // Drive any basic artificial (necessarily at value ~0) out of
        // the basis, or mark its row redundant.
        for r in 0..m {
            if tab.basis[r] >= art_start {
                let mut replaced = false;
                for c in 0..art_start {
                    if tab.at(r, c).abs() > 1e-7 {
                        tab.pivot(r, c);
                        replaced = true;
                        break;
                    }
                }
                if !replaced {
                    // Redundant row: every structural coefficient is 0.
                    // Leave the artificial basic at value 0 but bar it —
                    // the row can never bind.
                }
            }
        }
        for c in art_start..w {
            tab.enterable[c] = false;
        }
    }

    // ---- Phase 2: the true objective.
    let sense = if problem.maximize { -1.0 } else { 1.0 };
    for c in 0..=w {
        tab.set(m, c, 0.0);
    }
    for (j, &cj) in problem.objective.iter().enumerate() {
        tab.set(m, j, sense * cj);
    }
    for r in 0..m {
        let b = tab.basis[r];
        if b < n {
            let cb = sense * problem.objective[b];
            // epplan-lint: allow(float/exact-eq) — exact sparsity skip of structurally-zero cost rows; a tolerance here would change pivoting
            if cb != 0.0 {
                for c in 0..=w {
                    let v = tab.at(m, c) - cb * tab.at(r, c);
                    tab.set(m, c, v);
                }
            }
        }
    }

    let phase1_pivots = tab.guard.iterations();
    let phase2_end = {
        let mut sp = epplan_obs::span("lp.phase2");
        let r = tab.iterate();
        let pivots = tab.guard.iterations() - phase1_pivots;
        sp.add_iters(pivots);
        epplan_obs::counter_add("lp.iterations", pivots);
        r
    };
    match phase2_end {
        Ok(IterEnd::Optimal) => {
            let x = tab.extract(n);
            let objective = problem.objective_at(&x);
            Ok(Solution {
                x,
                objective,
                pivots: tab.guard.iterations(),
                dual_feasible: tab.verify_dual_feasible(),
            })
        }
        Ok(IterEnd::Unbounded) => Err(SolveError::numerical(
            STAGE,
            "objective is unbounded in the optimization direction",
        )),
        // Phase 2 walks feasible bases, so the point at exhaustion is a
        // valid (suboptimal) solution — attach it.
        Err(e) => {
            let x = tab.extract(n);
            let objective = problem.objective_at(&x);
            Err(e.discard_partial().with_partial(Solution {
                x,
                objective,
                pivots: tab.guard.iterations(),
                dual_feasible: false,
            }))
        }
    }
}

/// Solves `problem` with the two-phase simplex method and no caller
/// budget (the internal anti-cycling pivot cap still applies). See
/// [`solve_with_budget`].
pub fn solve(problem: &Problem) -> Result<Solution, SolveError<Solution>> {
    solve_with_budget(problem, SolveBudget::UNLIMITED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relation;
    use epplan_solve::FailureKind;
    use std::time::Duration;

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y  s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → 36 at (2, 6)
        let mut p = Problem::maximize(2);
        p.set_objective(&[(0, 3.0), (1, 5.0)]);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        p.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let s = p.solve().unwrap();
        assert_near(s.objective, 36.0);
        assert_near(s.x[0], 2.0);
        assert_near(s.x[1], 6.0);
        assert!(s.dual_feasible, "optimal exit must certify dual feasibility");
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → 22 at (10, 0)? check:
        // cheapest is all-x since 2 < 3: x = 10, y = 0 → 20.
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 2.0), (1, 3.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        let s = p.solve().unwrap();
        assert_near(s.objective, 20.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 6, x - y = 0 → x = y = 2, obj 4.
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 1.0), (1, 1.0)]);
        p.add_constraint(&[(0, 1.0), (1, 2.0)], Relation::Eq, 6.0);
        p.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Eq, 0.0);
        let s = p.solve().unwrap();
        assert_near(s.x[0], 2.0);
        assert_near(s.x[1], 2.0);
        assert_near(s.objective, 4.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::minimize(1);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        let e = p.solve().unwrap_err();
        assert_eq!(e.kind, FailureKind::Infeasible);
        assert!(e.partial.is_none());
    }

    #[test]
    fn unbounded_reported_as_numerical_instability() {
        let mut p = Problem::maximize(1);
        p.set_objective(&[(0, 1.0)]);
        p.add_constraint(&[(0, -1.0)], Relation::Le, 0.0); // x ≥ 0 only
        let e = p.solve().unwrap_err();
        assert_eq!(e.kind, FailureKind::NumericalInstability);
    }

    #[test]
    fn nan_objective_rejected() {
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, f64::NAN)]);
        let e = p.solve().unwrap_err();
        assert_eq!(e.kind, FailureKind::BadInput);
    }

    #[test]
    fn nan_rhs_and_coeff_rejected() {
        let mut p = Problem::minimize(1);
        p.add_constraint(&[(0, 1.0)], Relation::Le, f64::NAN);
        assert_eq!(p.solve().unwrap_err().kind, FailureKind::BadInput);

        let mut p = Problem::minimize(1);
        p.add_constraint(&[(0, f64::INFINITY)], Relation::Le, 1.0);
        assert_eq!(p.solve().unwrap_err().kind, FailureKind::BadInput);
    }

    #[test]
    fn tiny_iteration_budget_returns_partial_feasible_point() {
        // All-Le problem: phase 1 is skipped, so even a tiny pivot
        // budget exhausts in phase 2 where a feasible point exists.
        let mut p = Problem::maximize(2);
        p.set_objective(&[(0, 3.0), (1, 5.0)]);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        p.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let e = p
            .solve_with_budget(SolveBudget::from_iteration_cap(1))
            .unwrap_err();
        assert_eq!(e.kind, FailureKind::BudgetExhausted);
        let partial = e.partial.expect("phase-2 exhaustion carries a partial");
        assert!(p.is_feasible(&partial.x, 1e-7));
        assert!(partial.objective <= 36.0 + 1e-7);
        assert!(
            !partial.dual_feasible,
            "a truncated run must not claim optimality"
        );
    }

    #[test]
    fn zero_deadline_exhausts_budget() {
        let mut p = Problem::maximize(2);
        p.set_objective(&[(0, 1.0), (1, 1.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 1.0);
        // Zero allowances are pre-expired, so no sleep is needed for
        // the first in-loop check to trip.
        let r = p.solve_with_budget(SolveBudget::from_time_limit(Duration::ZERO));
        let e = r.unwrap_err();
        assert_eq!(e.kind, FailureKind::BudgetExhausted);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x - y ≤ -2 with min x: needs y ≥ x + 2, x can be 0 → obj 0.
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 1.0)]);
        p.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Le, -2.0);
        let s = p.solve().unwrap();
        assert_near(s.objective, 0.0);
        assert!(p.is_feasible(&s.x, 1e-7));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate LP (multiple rows binding at the origin).
        let mut p = Problem::maximize(3);
        p.set_objective(&[(0, 10.0), (1, -57.0), (2, -9.0)]);
        p.add_constraint(&[(0, 0.5), (1, -5.5), (2, -2.5)], Relation::Le, 0.0);
        p.add_constraint(&[(0, 0.5), (1, -1.5), (2, -0.5)], Relation::Le, 0.0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        let s = p.solve().unwrap();
        assert_near(s.objective, 1.0);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 listed twice plus a consistent ≥.
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 1.0), (1, 2.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 1.0);
        let s = p.solve().unwrap();
        assert_near(s.objective, 2.0); // all weight on x
    }

    #[test]
    fn zero_variable_problem() {
        let p = Problem::minimize(0);
        let s = p.solve().unwrap();
        assert_near(s.objective, 0.0);
    }

    #[test]
    fn transportation_lp() {
        // 2 supplies (3, 4), 2 demands (5, 2); costs [[1,4],[2,1]].
        // Optimal: s0→d0:3, s1→d0:2, s1→d1:2 → 3+4+2 = 9.
        let mut p = Problem::minimize(4); // x00 x01 x10 x11
        p.set_objective(&[(0, 1.0), (1, 4.0), (2, 2.0), (3, 1.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 3.0);
        p.add_constraint(&[(2, 1.0), (3, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(0, 1.0), (2, 1.0)], Relation::Eq, 5.0);
        p.add_constraint(&[(1, 1.0), (3, 1.0)], Relation::Eq, 2.0);
        let s = p.solve().unwrap();
        assert_near(s.objective, 9.0);
        assert!(p.is_feasible(&s.x, 1e-7));
    }

    #[test]
    fn solution_is_always_feasible_when_optimal() {
        let mut p = Problem::maximize(3);
        p.set_objective(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Le, 10.0);
        p.add_constraint(&[(0, 1.0), (2, -1.0)], Relation::Ge, 1.0);
        p.add_constraint(&[(1, 1.0), (2, 1.0)], Relation::Eq, 5.0);
        let s = p.solve().unwrap();
        assert!(p.is_feasible(&s.x, 1e-7));
    }

    #[test]
    fn gap_like_lp_relaxation() {
        // 2 machines, 3 jobs; assignment equality + capacity ≤.
        // cost c[i][j], time p[i][j].
        let c = [[1.0, 2.0, 3.0], [2.0, 1.0, 1.0]];
        let p_t = [[1.0, 1.0, 2.0], [2.0, 1.0, 1.0]];
        let cap = [2.0, 2.0];
        // var x[i][j] → index i*3 + j
        let mut lp = Problem::minimize(6);
        let obj: Vec<(usize, f64)> = (0..2)
            .flat_map(|i| (0..3).map(move |j| (i * 3 + j, c[i][j])))
            .collect();
        lp.set_objective(&obj);
        for j in 0..3 {
            lp.add_constraint(&[(j, 1.0), (3 + j, 1.0)], Relation::Eq, 1.0);
        }
        for i in 0..2 {
            let row: Vec<(usize, f64)> = (0..3).map(|j| (i * 3 + j, p_t[i][j])).collect();
            lp.add_constraint(&row, Relation::Le, cap[i]);
        }
        let s = lp.solve().unwrap();
        assert!(lp.is_feasible(&s.x, 1e-7));
        // Integral optimum assigns j0→m0 (1), j1→m0 or m1 (cost 2 or 1),
        // j2→m1 (1). Best integral = 1 + 1 + 1 = 3; LP ≤ that.
        assert!(s.objective <= 3.0 + 1e-7);
        assert!(s.objective >= 1.0);
    }
}
