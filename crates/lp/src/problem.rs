/// Direction of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

#[derive(Debug, Clone)]
pub(crate) struct Row {
    /// Sparse coefficients `(variable index, value)`; duplicates are
    /// summed during standardization.
    pub coeffs: Vec<(usize, f64)>,
    pub relation: Relation,
    pub rhs: f64,
}

/// A linear program `min cᵀx  s.t.  Ax {≤,=,≥} b,  x ≥ 0`.
///
/// Rows are entered sparsely; the solver densifies internally. Use
/// [`Problem::maximize`] to flip the objective sense — the reported
/// [`crate::Solution::objective`] is always in the *original* sense.
///
/// # Example
/// ```
/// use epplan_lp::{Problem, Relation};
/// // max x + y  s.t.  x + 2y ≤ 4,  3x + y ≤ 6
/// let mut p = Problem::maximize(2);
/// p.set_objective(&[(0, 1.0), (1, 1.0)]);
/// p.add_constraint(&[(0, 1.0), (1, 2.0)], Relation::Le, 4.0);
/// p.add_constraint(&[(0, 3.0), (1, 1.0)], Relation::Le, 6.0);
/// let s = p.solve().expect("bounded and feasible");
/// assert!((s.objective - 2.8).abs() < 1e-7); // x = 1.6, y = 1.2
/// ```
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) n_vars: usize,
    pub(crate) objective: Vec<f64>,
    pub(crate) rows: Vec<Row>,
    pub(crate) maximize: bool,
    /// First builder misuse observed (out-of-range variable index).
    /// A poisoned problem fails at solve time with `BadInput` instead
    /// of panicking at build time.
    pub(crate) defect: Option<String>,
}

impl Problem {
    /// New minimization problem over `n_vars` non-negative variables.
    pub fn minimize(n_vars: usize) -> Self {
        Problem {
            n_vars,
            objective: vec![0.0; n_vars],
            rows: Vec::new(),
            maximize: false,
            defect: None,
        }
    }

    /// New maximization problem over `n_vars` non-negative variables.
    pub fn maximize(n_vars: usize) -> Self {
        Problem {
            maximize: true,
            ..Problem::minimize(n_vars)
        }
    }

    /// Number of decision variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraint rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Records the first builder misuse; later ones are dropped.
    fn poison(&mut self, message: String) {
        self.defect.get_or_insert(message);
    }

    /// The first builder misuse, if any. A poisoned problem fails at
    /// solve time with a `BadInput` error.
    pub fn defect(&self) -> Option<&str> {
        self.defect.as_deref()
    }

    /// Sets the objective coefficients from sparse `(var, coeff)` pairs.
    /// Unmentioned variables keep coefficient zero; duplicate mentions
    /// accumulate. An out-of-range index poisons the problem (see
    /// [`Problem::defect`]) instead of panicking.
    pub fn set_objective(&mut self, coeffs: &[(usize, f64)]) {
        self.objective.iter_mut().for_each(|c| *c = 0.0);
        for &(j, v) in coeffs {
            if j >= self.n_vars {
                self.poison(format!("objective var {j} out of range ({})", self.n_vars));
                continue;
            }
            self.objective[j] += v;
        }
    }

    /// Sets a single objective coefficient. An out-of-range index
    /// poisons the problem instead of panicking.
    pub fn set_objective_coeff(&mut self, var: usize, coeff: f64) {
        if var >= self.n_vars {
            self.poison(format!("objective var {var} out of range ({})", self.n_vars));
            return;
        }
        self.objective[var] = coeff;
    }

    /// Adds the constraint `Σ coeffs · x  relation  rhs`. An
    /// out-of-range index poisons the problem instead of panicking;
    /// the offending row is dropped.
    pub fn add_constraint(&mut self, coeffs: &[(usize, f64)], relation: Relation, rhs: f64) {
        if let Some(&(j, _)) = coeffs.iter().find(|&&(j, _)| j >= self.n_vars) {
            self.poison(format!("constraint var {j} out of range ({})", self.n_vars));
            return;
        }
        self.rows.push(Row {
            coeffs: coeffs.to_vec(),
            relation,
            rhs,
        });
    }

    /// Adds an upper bound `x_var ≤ bound` as an explicit row.
    pub fn add_upper_bound(&mut self, var: usize, bound: f64) {
        self.add_constraint(&[(var, 1.0)], Relation::Le, bound);
    }

    /// Solves the program with the two-phase simplex method and no
    /// caller budget. See [`crate::solve_with_budget`] for the error
    /// contract.
    pub fn solve(&self) -> Result<crate::Solution, epplan_solve::SolveError<crate::Solution>> {
        crate::solve(self)
    }

    /// Solves the program under `budget`; see [`crate::solve_with_budget`].
    pub fn solve_with_budget(
        &self,
        budget: epplan_solve::SolveBudget,
    ) -> Result<crate::Solution, epplan_solve::SolveError<crate::Solution>> {
        crate::solve_with_budget(self, budget)
    }

    /// Evaluates the objective (in the original sense) at `x`.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        self.objective
            .iter()
            .zip(x)
            .map(|(c, v)| c * v)
            .sum::<f64>()
    }

    /// Checks primal feasibility of `x` within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.n_vars || x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.rows.iter().all(|row| {
            let lhs: f64 = row.coeffs.iter().map(|&(j, a)| a * x[j]).sum();
            match row.relation {
                Relation::Le => lhs <= row.rhs + tol,
                Relation::Eq => (lhs - row.rhs).abs() <= tol,
                Relation::Ge => lhs >= row.rhs - tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_duplicates() {
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 1.0), (0, 2.0), (1, -1.0)]);
        assert_eq!(p.objective, vec![3.0, -1.0]);
    }

    #[test]
    fn objective_var_out_of_range_poisons() {
        let mut p = Problem::minimize(1);
        p.set_objective(&[(1, 1.0)]);
        assert!(p.defect().is_some_and(|d| d.contains("out of range")));
        let err = p.solve().unwrap_err();
        assert_eq!(err.kind, epplan_solve::FailureKind::BadInput);
    }

    #[test]
    fn constraint_var_out_of_range_poisons() {
        let mut p = Problem::minimize(1);
        p.add_constraint(&[(3, 1.0)], Relation::Le, 1.0);
        assert!(p.defect().is_some_and(|d| d.contains("out of range")));
        assert_eq!(p.n_rows(), 0);
        let err = p.solve().unwrap_err();
        assert_eq!(err.kind, epplan_solve::FailureKind::BadInput);
        // set_objective_coeff poisons the same way.
        let mut p = Problem::minimize(1);
        p.set_objective_coeff(9, 1.0);
        assert!(p.defect().is_some());
    }

    #[test]
    fn feasibility_check() {
        let mut p = Problem::minimize(2);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 3.0);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0);
        assert!(p.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!p.is_feasible(&[0.5, 1.0], 1e-9)); // violates ≥ 1
        assert!(!p.is_feasible(&[2.0, 2.0], 1e-9)); // violates ≤ 3
        assert!(!p.is_feasible(&[-0.1, 0.0], 1e-9)); // negative variable
    }

    #[test]
    fn objective_at_respects_sense() {
        let mut p = Problem::maximize(2);
        p.set_objective(&[(0, 2.0), (1, 3.0)]);
        assert_eq!(p.objective_at(&[1.0, 1.0]), 5.0);
    }
}
