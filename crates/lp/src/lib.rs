//! A self-contained dense linear-programming solver.
//!
//! The GAP-based GEPC algorithm of the paper solves the LP relaxation of
//! a Generalized Assignment Problem instance (Section III-A, citing the
//! Shmoys–Tardos rounding \[6\] and the Plotkin–Shmoys–Tardos relaxation
//! method \[5\]). No external LP library is permitted in this
//! reproduction, so this crate implements a classic **two-phase tableau
//! simplex** method:
//!
//! * [`Problem`] — a builder for `min cᵀx  s.t.  Ax {≤,=,≥} b,  x ≥ 0`
//!   (maximization is handled by negating the objective);
//! * [`solve`] / [`solve_with_budget`] / [`Problem::solve`] — two-phase
//!   simplex with Dantzig pricing and an automatic switch to Bland's
//!   rule when degeneracy threatens cycling;
//! * the fallible contract of `epplan-solve`: a run returns
//!   `Result<Solution, SolveError<Solution>>` — infeasibility,
//!   non-finite inputs, unbounded objectives and exhausted
//!   [`epplan_solve::SolveBudget`]s are all typed errors, and a
//!   budget-exhausted phase-2 run attaches the best feasible point as
//!   the error's partial artifact.
//!
//! The dense tableau is appropriate for the small-to-medium instances
//! the exact GAP pipeline is used on; the large instances in the paper's
//! scalability sweeps go through the multiplicative-weights fractional
//! solver in `epplan-gap` instead, exactly as the paper prescribes.


// Solver code must degrade with typed errors, never panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod problem;
mod simplex;

pub use problem::{Problem, Relation};
pub use simplex::{solve, solve_with_budget, Solution};
