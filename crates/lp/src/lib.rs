//! A self-contained dense linear-programming solver.
//!
//! The GAP-based GEPC algorithm of the paper solves the LP relaxation of
//! a Generalized Assignment Problem instance (Section III-A, citing the
//! Shmoys–Tardos rounding \[6\] and the Plotkin–Shmoys–Tardos relaxation
//! method \[5\]). No external LP library is permitted in this
//! reproduction, so this crate implements a classic **two-phase tableau
//! simplex** method:
//!
//! * [`Problem`] — a builder for `min cᵀx  s.t.  Ax {≤,=,≥} b,  x ≥ 0`
//!   (maximization is handled by negating the objective);
//! * [`solve`] / [`Problem::solve`] — two-phase simplex with Dantzig
//!   pricing and an automatic switch to Bland's rule when degeneracy
//!   threatens cycling;
//! * [`Solution`] with [`Status`] `Optimal` / `Infeasible` / `Unbounded`.
//!
//! The dense tableau is appropriate for the small-to-medium instances
//! the exact GAP pipeline is used on; the large instances in the paper's
//! scalability sweeps go through the multiplicative-weights fractional
//! solver in `epplan-gap` instead, exactly as the paper prescribes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod problem;
mod simplex;

pub use problem::{Problem, Relation};
pub use simplex::{solve, Solution, Status};
