//! Adversarial robustness properties: every solver entry point must be
//! total — `Ok` with a hard-feasible plan or a typed [`SolveError`],
//! never a panic — even on degenerate instances that the strict
//! validators would reject: empty user/event sets, all-zero utility
//! matrices, users with zero travel budget (every event unreachable),
//! and events saturated at `η = ξ`.
//!
//! These instances are built through the *lenient* constructors
//! (`Instance::new` et al.) on purpose: `validate_strict` refuses zero
//! budgets, but a solver must still survive them.

use epplan::core::incremental::{AtomicOp, IncrementalPlanner};
use epplan::core::model::{Event, Instance, TimeInterval, User, UtilityMatrix};
use epplan::core::solver::{ExactSolver, FailureKind, SolveBudget};
use epplan::datagen::{generate, GeneratorConfig};
use epplan::prelude::*;
use proptest::prelude::*;

/// Degenerate-instance regimes the strategies below cycle through.
const REGIME_ALL_ZERO_UTILITY: usize = 0;
const REGIME_ZERO_BUDGET: usize = 1;
const REGIME_SATURATED: usize = 2; // η = ξ on every event
const REGIME_MIXED: usize = 3;

/// Builds an adversarial instance through the lenient constructors.
///
/// `n_users` and `n_events` may be zero; utilities may be identically
/// zero; budgets may be zero while every event sits at distance ≥ 5;
/// lower bounds may equal upper bounds (and may exceed the population,
/// making the instance infeasible — that must surface as a typed error
/// or a best-effort plan, not a crash).
fn adversarial_instance(n_users: usize, n_events: usize, regime: usize, seed: u64) -> Instance {
    let mix = |a: usize, b: u64| (a as u64).wrapping_mul(31).wrapping_add(b.wrapping_mul(17));
    let users = (0..n_users)
        .map(|u| {
            let budget = match regime {
                REGIME_ZERO_BUDGET => 0.0,
                REGIME_MIXED if u % 2 == 0 => 0.0,
                _ => 50.0,
            };
            User::new(Point::new(u as f64, 0.0), budget)
        })
        .collect::<Vec<_>>();
    let events = (0..n_events)
        .map(|e| {
            let k = 1 + (mix(e, seed) % 4) as u32;
            let (lower, upper) = match regime {
                REGIME_SATURATED => (k, k),
                REGIME_MIXED if e % 2 == 1 => (k, k),
                _ => (0, k + 2),
            };
            // Offset venues so zero-budget users genuinely cannot reach
            // them, and stagger times so some windows overlap.
            let start = (mix(e, seed) % 120) as u32;
            Event::new(
                Point::new(e as f64, 5.0),
                lower,
                upper,
                TimeInterval::new(start, start + 60),
            )
        })
        .collect::<Vec<_>>();
    let mut matrix = UtilityMatrix::zeros(n_users, n_events);
    if regime != REGIME_ALL_ZERO_UTILITY {
        for u in 0..n_users {
            for e in 0..n_events {
                let h = mix(u, seed).wrapping_add(mix(e, seed ^ 0x9e37));
                matrix.set(
                    UserId(u as u32),
                    EventId(e as u32),
                    (h % 101) as f64 / 100.0,
                );
            }
        }
    }
    Instance::new(users, events, matrix).unwrap()
}

fn arb_adversarial() -> impl Strategy<Value = Instance> {
    (0usize..10, 0usize..6, 0usize..4, 0u64..10_000)
        .prop_map(|(u, e, regime, seed)| adversarial_instance(u, e, regime, seed))
}

/// A small well-formed base for the incremental-op property.
fn base_instance(seed: u64) -> Instance {
    generate(&GeneratorConfig {
        n_users: 12,
        n_events: 4,
        seed,
        mean_lower: 2,
        mean_upper: 6,
        ..Default::default()
    })
}

/// Generates an atomic operation that may be malformed: out-of-range
/// ids, NaN/∞/negative money, utilities outside `[0, 1]`, inverted time
/// windows, wrong-arity utility vectors.
fn adversarial_op(kind: usize, ev: u32, uv: u32, raw: u32, poison: usize) -> AtomicOp {
    let event = EventId(ev);
    let bad_money = [f64::NAN, f64::INFINITY, -3.0];
    let bad_utility = [f64::NAN, 1.5, -0.25];
    match kind % 8 {
        0 => AtomicOp::EtaDecrease { event, new_upper: raw },
        1 => AtomicOp::EtaIncrease { event, new_upper: raw + 1 },
        2 => AtomicOp::XiIncrease { event, new_lower: raw },
        3 => AtomicOp::XiDecrease { event, new_lower: 0 },
        4 => AtomicOp::TimeChange {
            event,
            // Inverted on odd raws: start after end.
            new_time: if raw.is_multiple_of(2) {
                TimeInterval::new(0, 60)
            } else {
                TimeInterval { start: 90, end: 30 }
            },
        },
        5 => AtomicOp::LocationChange {
            event,
            new_location: if raw.is_multiple_of(2) {
                Point::new(1.0, 1.0)
            } else {
                Point::new(f64::NAN, 0.0)
            },
        },
        6 => AtomicOp::UtilityChange {
            user: UserId(uv),
            event,
            new_utility: if poison.is_multiple_of(2) {
                0.5
            } else {
                bad_utility[poison % bad_utility.len()]
            },
        },
        _ => AtomicOp::FeeChange {
            event,
            new_fee: if poison.is_multiple_of(2) {
                1.0
            } else {
                bad_money[poison % bad_money.len()]
            },
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn greedy_is_total_on_adversarial_instances(inst in arb_adversarial(), seed in 0u64..50) {
        let sol = GreedySolver::seeded(seed).solve(&inst);
        let v = sol.plan.validate(&inst);
        prop_assert!(v.hard_ok(), "{:?}", v.violations);
    }

    #[test]
    fn gap_try_solve_is_ok_or_typed_error(inst in arb_adversarial()) {
        match GapBasedSolver::default().try_solve(&inst, SolveBudget::UNLIMITED) {
            Ok(sol) => {
                let v = sol.plan.validate(&inst);
                prop_assert!(v.hard_ok(), "{:?}", v.violations);
            }
            Err(e) => {
                prop_assert!(!e.stage.is_empty());
                if let Some(partial) = e.partial {
                    let v = partial.plan.validate(&inst);
                    prop_assert!(v.hard_ok(), "{:?}", v.violations);
                }
            }
        }
    }

    #[test]
    fn gap_starved_budget_degrades_gracefully(inst in arb_adversarial()) {
        let budget = SolveBudget::from_iteration_cap(1);
        match GapBasedSolver::default().solve_robust(&inst, budget) {
            Ok(sol) => {
                prop_assert!(sol.plan.validate(&inst).hard_ok());
            }
            Err(e) => {
                // The degradation chain guarantees a usable fallback.
                let partial = e.partial.as_ref().expect("chain always yields a plan");
                let v = partial.plan.validate(&inst);
                prop_assert!(v.hard_ok(), "{:?}", v.violations);
                prop_assert!(partial.report.degraded());
            }
        }
    }

    #[test]
    fn exact_solver_is_typed_on_adversarial_instances(
        u in 0usize..6, e in 0usize..4, regime in 0usize..4, seed in 0u64..10_000,
    ) {
        let inst = adversarial_instance(u, e, regime, seed);
        match ExactSolver::default().try_solve_optimal(&inst, SolveBudget::UNLIMITED) {
            Ok(sol) => {
                prop_assert!(sol.plan.validate(&inst).hard_ok());
            }
            Err(err) => {
                prop_assert!(matches!(
                    err.kind,
                    FailureKind::BadInput
                        | FailureKind::Infeasible
                        | FailureKind::BudgetExhausted
                ));
                if let Some(partial) = err.partial {
                    prop_assert!(partial.plan.validate(&inst).hard_ok());
                }
            }
        }
    }

    #[test]
    fn incremental_try_apply_is_total(
        seed in 0u64..500,
        kind in 0usize..8,
        ev in 0u32..12,
        uv in 0u32..40,
        raw in 0u32..12,
        poison in 0usize..6,
    ) {
        let inst = base_instance(seed);
        let plan = GreedySolver::seeded(seed).solve(&inst).plan;
        let op = adversarial_op(kind, ev, uv, raw, poison);
        match IncrementalPlanner.try_apply(&inst, &plan, &op) {
            Ok(out) => {
                // A structurally valid op may still be unsatisfiable
                // (e.g. ξ raised beyond the population). The planner
                // then reports the affected events in `shortfall`
                // rather than failing; any remaining hard violation
                // must be exactly such a declared lower-bound gap.
                let v = out.plan.validate(&out.instance);
                for viol in &v.violations {
                    match viol {
                        epplan::core::plan::Violation::LowerBoundShortfall { event, .. } => {
                            prop_assert!(
                                out.shortfall.contains(event),
                                "undeclared shortfall: {viol:?}"
                            );
                        }
                        other => {
                            prop_assert!(false, "hard violation after op {op:?}: {other:?}")
                        }
                    }
                }
            }
            Err(e) => {
                prop_assert_eq!(e.kind, FailureKind::BadInput);
                // The partial outcome is the unchanged plan.
                let partial = e.partial.expect("rejection keeps the old plan");
                prop_assert_eq!(&partial.plan, &plan);
                prop_assert_eq!(partial.dif, 0);
            }
        }
    }
}

#[test]
fn empty_instance_is_survivable_by_every_solver() {
    let inst = Instance::new(Vec::new(), Vec::new(), UtilityMatrix::zeros(0, 0)).unwrap();

    let sol = GreedySolver::seeded(7).solve(&inst);
    assert!(sol.plan.validate(&inst).hard_ok());
    assert_eq!(sol.plan.total_assignments(), 0);

    let sol = GapBasedSolver::default()
        .try_solve(&inst, SolveBudget::UNLIMITED)
        .expect("empty instance is trivially solvable");
    assert!(sol.plan.validate(&inst).hard_ok());

    let sol = ExactSolver::default()
        .try_solve_optimal(&inst, SolveBudget::UNLIMITED)
        .expect("empty instance is trivially optimal");
    assert!(sol.plan.validate(&inst).hard_ok());
}

#[test]
fn zero_budget_users_produce_empty_but_valid_plans() {
    let inst = adversarial_instance(6, 3, REGIME_ZERO_BUDGET, 11);
    let sol = GreedySolver::seeded(3).solve(&inst);
    assert!(sol.plan.validate(&inst).hard_ok());
    // Every event is 5 units away and every budget is 0: nobody travels.
    assert_eq!(sol.plan.total_assignments(), 0);
}

#[test]
fn eta_equals_xi_saturation_never_overfills() {
    let inst = adversarial_instance(9, 4, REGIME_SATURATED, 23);
    for seed in 0..5 {
        let sol = GreedySolver::seeded(seed).solve(&inst);
        assert!(sol.plan.validate(&inst).hard_ok());
        for e in inst.event_ids() {
            assert!(sol.plan.attendance(e) <= inst.event(e).upper);
        }
    }
    match GapBasedSolver::default().try_solve(&inst, SolveBudget::UNLIMITED) {
        Ok(sol) => assert!(sol.plan.validate(&inst).hard_ok()),
        Err(e) => {
            if let Some(partial) = e.partial {
                assert!(partial.plan.validate(&inst).hard_ok());
            }
        }
    }
}
