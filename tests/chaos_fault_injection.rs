//! Targeted fault-injection scenarios through the degradation chain:
//!
//! * a fault in `flow.mcmf.augment` during Shmoys–Tardos rounding must
//!   land the solve in the greedy fallback, with the failed stage on
//!   the report and (metrics on) per-stage costs recorded;
//! * the fallback must be **bit-identical** at `threads = 1` and
//!   `threads = 4` — injection sites live in serial code, so hit
//!   counts are thread-count-invariant;
//! * `PoisonValue` corruption must be caught by certification and
//!   escalate tier by tier, down to the empty plan.
//!
//! Fault state is process-global: tests serialize on one mutex and
//! disarm through a panic-safe drop guard.

use epplan::core::certify::certify;
use epplan::core::model::{Event, Instance, TimeInterval, User, UtilityMatrix};
use epplan::core::solver::SolveBudget;
use epplan::fault::FaultPlan;
use epplan::prelude::*;
use epplan::solve::{AttemptOutcome, FailureKind};
use std::sync::{Mutex, MutexGuard};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

struct Armed;

impl Drop for Armed {
    fn drop(&mut self) {
        epplan::fault::clear();
    }
}

fn arm(spec: &str) -> Armed {
    epplan::fault::install(
        FaultPlan::from_spec(spec).unwrap_or_else(|e| panic!("bad spec {spec}: {e}")),
    );
    Armed
}

fn instance() -> Instance {
    let users = vec![
        User::new(Point::new(0.0, 0.0), 50.0),
        User::new(Point::new(1.0, 0.0), 50.0),
        User::new(Point::new(2.0, 0.0), 50.0),
    ];
    let events = vec![
        Event::new(Point::new(0.0, 1.0), 2, 3, TimeInterval::new(0, 59)),
        Event::new(Point::new(0.0, 2.0), 1, 2, TimeInterval::new(60, 119)),
    ];
    let utilities = UtilityMatrix::from_rows(vec![
        vec![0.9, 0.4],
        vec![0.7, 0.8],
        vec![0.5, 0.6],
    ]).unwrap();
    Instance::new(users, events, utilities).unwrap()
}

/// An instance whose unrepaired GAP assignment is genuinely corrupt:
/// user 0 dominates both *overlapping* events, user 1 is forbidden
/// everywhere, so skipping Algorithm 1 leaves a time conflict.
fn conflict_prone_instance() -> Instance {
    let users = vec![
        User::new(Point::new(0.0, 0.0), 50.0),
        User::new(Point::new(1.0, 0.0), 50.0),
    ];
    let events = vec![
        Event::new(Point::new(0.0, 1.0), 1, 2, TimeInterval::new(0, 59)),
        Event::new(Point::new(0.0, 2.0), 1, 2, TimeInterval::new(30, 119)),
    ];
    let utilities = UtilityMatrix::from_rows(vec![vec![0.9, 0.9], vec![0.0, 0.0]]).unwrap();
    Instance::new(users, events, utilities).unwrap()
}

/// Runs the certified gap_based chain under a `flow.mcmf.augment`
/// fault and returns the serialized fallback plan plus the attempt
/// chain (solver, outcome-class, message) for comparison across
/// thread counts.
fn faulted_fallback(threads: usize) -> (String, Vec<(String, String, String)>) {
    epplan::par::set_threads(threads);
    let _armed = arm("flow.mcmf.augment=error");
    let inst = instance();
    let err = GapBasedSolver::default()
        .with_certify(true)
        .solve_robust(&inst, SolveBudget::UNLIMITED)
        .expect_err("the injected flow fault must fail the gap tier");
    assert_eq!(err.kind, FailureKind::NumericalInstability);
    assert!(
        err.message.contains("flow.mcmf.augment"),
        "error must name the injected site: {}",
        err.message
    );
    let fallback = err.partial.expect("fallback plan travels as partial");
    let plan_json = serde_json::to_string(&fallback.plan)
        .unwrap_or_else(|e| panic!("serialize fallback plan: {e}"));
    let chain = fallback
        .report
        .attempts
        .iter()
        .map(|a| {
            let (class, msg) = match &a.outcome {
                AttemptOutcome::Succeeded(s) => (format!("ok:{s}"), String::new()),
                AttemptOutcome::Failed { kind, message } => {
                    (format!("fail:{kind:?}"), message.clone())
                }
            };
            (a.solver.to_string(), class, msg)
        })
        .collect();
    (plan_json, chain)
}

#[test]
fn flow_fault_during_rounding_lands_in_greedy_fallback_with_stages() {
    let _guard = exclusive();
    epplan::obs::enable_metrics();
    let _armed = arm("flow.mcmf.augment=error");
    let inst = instance();
    let err = GapBasedSolver::default()
        .with_certify(true)
        .solve_robust(&inst, SolveBudget::UNLIMITED)
        .expect_err("the injected flow fault must fail the gap tier");
    let fallback = err.partial.expect("fallback plan travels as partial");

    // The degradation chain names the failed stage and the winner.
    assert!(fallback.report.degraded());
    assert_eq!(fallback.report.winner(), Some("greedy"));
    let failed: Vec<&str> = fallback
        .report
        .attempts
        .iter()
        .filter_map(|a| match &a.outcome {
            AttemptOutcome::Failed { message, .. } => Some(message.as_str()),
            _ => None,
        })
        .collect();
    assert!(
        failed.iter().any(|m| m.contains("flow.mcmf.augment")),
        "failed attempts must record the injected site: {failed:?}"
    );

    // Metrics were on → per-stage costs are recorded, including the
    // fallback tier that actually ran.
    assert!(
        fallback
            .report
            .stages
            .iter()
            .any(|s| s.name == "solve.greedy_fallback"),
        "stages must record the greedy fallback: {:?}",
        fallback.report.stages.iter().map(|s| &s.name).collect::<Vec<_>>()
    );

    // The fallback is certified.
    let cert = fallback
        .report
        .certificate
        .as_ref()
        .expect("certificate requested");
    assert!(cert.hard_ok());
    assert!(fallback.plan.validate(&inst).hard_ok());
}

#[test]
fn faulted_fallback_is_bit_identical_across_thread_counts() {
    let _guard = exclusive();
    let (plan1, chain1) = faulted_fallback(1);
    let (plan4, chain4) = faulted_fallback(4);
    assert_eq!(plan1, plan4, "fallback plans must be bit-identical at threads=1 vs 4");
    assert_eq!(chain1, chain4, "attempt chains must match at threads=1 vs 4");
    epplan::par::set_threads(1);
}

#[test]
fn poison_escapes_without_certification_but_not_with_it() {
    let _guard = exclusive();
    let inst = conflict_prone_instance();

    // Without certification the unrepaired plan escapes as a "success".
    {
        let _armed = arm("core.conflict_adjust.apply=nan");
        let sol = GapBasedSolver::default()
            .solve_robust(&inst, SolveBudget::UNLIMITED)
            .unwrap_or_else(|e| panic!("uncertified poison run failed outright: {}", e.message));
        assert!(
            !sol.plan.validate(&inst).hard_ok(),
            "this instance must actually corrupt under the poison, or the certify case tests nothing"
        );
    }

    // With certification the corruption is caught and the solve
    // escalates to the (valid, certified) greedy tier.
    {
        let _armed = arm("core.conflict_adjust.apply=nan");
        let err = GapBasedSolver::default()
            .with_certify(true)
            .solve_robust(&inst, SolveBudget::UNLIMITED)
            .expect_err("certification must reject the poisoned plan");
        assert!(
            err.message.contains("time-conflict"),
            "rejection names the violated constraint: {}",
            err.message
        );
        let fallback = err.partial.expect("fallback plan travels as partial");
        assert_eq!(fallback.report.winner(), Some("greedy"));
        assert!(fallback.plan.validate(&inst).hard_ok());
        let cert = fallback.report.certificate.as_ref().expect("certificate");
        assert!(cert.hard_ok());
    }
}

#[test]
fn double_fault_escalates_to_certified_empty_plan() {
    let _guard = exclusive();
    let inst = conflict_prone_instance();
    let _armed = arm("core.reduction.build=error;core.greedy.fallback=nan");
    let err = GapBasedSolver::default()
        .with_certify(true)
        .solve_robust(&inst, SolveBudget::UNLIMITED)
        .expect_err("gap tier dies on the reduction fault");
    assert!(err.message.contains("core.reduction.build"));
    let fallback = err.partial.expect("fallback plan travels as partial");

    // Chain: gap_based ✗ → greedy ✗ (poisoned, caught) → empty ✓.
    assert_eq!(fallback.report.winner(), Some("best_effort_empty"));
    assert_eq!(fallback.plan.total_assignments(), 0);
    let cert = fallback.report.certificate.as_ref().expect("certificate");
    assert!(cert.hard_ok());
    assert_eq!(certify(&inst, &fallback.plan).hard_ok(), cert.hard_ok());
}

#[test]
fn deadline_fault_maps_to_budget_exhausted() {
    let _guard = exclusive();
    let _armed = arm("core.reduction.build=deadline");
    let inst = instance();
    let err = GapBasedSolver::default()
        .solve_robust(&inst, SolveBudget::UNLIMITED)
        .expect_err("deadline trip fails the gap tier");
    assert_eq!(err.kind, FailureKind::BudgetExhausted);
    let fallback = err.partial.expect("fallback plan travels as partial");
    assert_eq!(fallback.report.winner(), Some("greedy"));
}
