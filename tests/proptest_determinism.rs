//! Thread-count determinism: the `epplan-par` contract says a parallel
//! run is bit-identical to a serial one (fixed chunk boundaries, chunk
//! results merged in index order). These properties pin that contract
//! end-to-end: every solver, and the generator itself, must produce
//! the *same plan and the same total utility, to the bit*, at
//! `threads = 1` and `threads = 4` on a single-core machine alike.

use epplan::core::solver::{LnsSolver, LocalSearch};
use epplan::datagen::{generate, GeneratorConfig};
use epplan::gap::packing::{mw_fractional, PackingConfig};
use epplan::gap::{lp_relaxation, round_shmoys_tardos, GapInstance};
use epplan::prelude::*;
use proptest::prelude::*;
use std::sync::Mutex;

/// The worker-count knob is process-global; integration-test cases run
/// on multiple threads, so every case that flips it holds this lock.
static THREADS: Mutex<()> = Mutex::new(());

/// Runs `f` at `threads = 1` and again at `threads = 4`, restoring the
/// serial default afterwards, and returns both results for comparison.
fn at_both_thread_counts<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = THREADS.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    epplan::par::set_threads(1);
    let serial = f();
    epplan::par::set_threads(4);
    let parallel = f();
    epplan::par::set_threads(1);
    (serial, parallel)
}

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (2usize..50, 1usize..10, 0u64..10_000, 0.0..0.6f64).prop_map(
        |(n_users, n_events, seed, conflict_ratio)| GeneratorConfig {
            n_users,
            n_events,
            seed,
            conflict_ratio,
            mean_lower: 2,
            mean_upper: 6,
            ..Default::default()
        },
    )
}

/// Arbitrary dense GAP instances: costs/times in (0, 1], capacities
/// loose enough that the LP relaxation stays feasible yet tight enough
/// to force genuinely fractional optima (the slot-splitting path).
fn arb_gap() -> impl Strategy<Value = GapInstance> {
    (2usize..5, 2usize..9, 0u64..10_000).prop_map(|(m, n, seed)| {
        // Splitmix-style hash keeps instance generation self-contained
        // (no dependence on the datagen crate's RNG stream).
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state >> 30;
            state = state.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            state ^= state >> 27;
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let costs: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| 0.05 + 0.95 * next()).collect())
            .collect();
        let times: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| 0.1 + 0.9 * next()).collect())
            .collect();
        // Total capacity ≈ 1.2 × the mean per-machine load of a
        // balanced fractional assignment.
        let cap = 1.2 * (n as f64) * 0.55 / (m as f64);
        GapInstance::from_matrices(costs, times, vec![cap.max(1.0); m])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generator_is_thread_invariant(cfg in arb_config()) {
        let (serial, parallel) = at_both_thread_counts(|| generate(&cfg));
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn greedy_is_thread_invariant(cfg in arb_config(), seed in 0u64..100) {
        let inst = generate(&cfg);
        let (serial, parallel) =
            at_both_thread_counts(|| GreedySolver::seeded(seed).solve(&inst));
        prop_assert_eq!(&serial.plan, &parallel.plan);
        prop_assert_eq!(serial.utility.to_bits(), parallel.utility.to_bits());
    }

    #[test]
    fn gap_based_is_thread_invariant(cfg in arb_config()) {
        let inst = generate(&cfg);
        let (serial, parallel) =
            at_both_thread_counts(|| GapBasedSolver::default().solve(&inst));
        prop_assert_eq!(&serial.plan, &parallel.plan);
        prop_assert_eq!(serial.utility.to_bits(), parallel.utility.to_bits());
    }

    #[test]
    fn local_search_is_thread_invariant(cfg in arb_config(), seed in 0u64..100) {
        let inst = generate(&cfg);
        let base = GreedySolver::seeded(seed).solve(&inst).plan;
        let (serial, parallel) = at_both_thread_counts(|| {
            let mut plan = base.clone();
            let gain = LocalSearch::default().improve(&inst, &mut plan);
            (plan, gain)
        });
        prop_assert_eq!(&serial.0, &parallel.0);
        prop_assert_eq!(serial.1.to_bits(), parallel.1.to_bits());
    }

    #[test]
    fn rounding_slot_graph_is_thread_invariant(g in arb_gap()) {
        // The PR-4 rewrite replaced the rounding slot map's HashMap
        // with an index-keyed Vec; this property pins the whole
        // fractional → slot-graph → matching path to the bit across
        // thread counts, over both fractional front-ends.
        let (serial, parallel) = at_both_thread_counts(|| {
            let lp = lp_relaxation(&g).ok().map(|x| round_shmoys_tardos(&g, &x).ok());
            let mw = mw_fractional(&g, &PackingConfig::default())
                .ok()
                .map(|x| round_shmoys_tardos(&g, &x).ok());
            (lp, mw)
        });
        let flat = |r: Option<Option<epplan::gap::GapSolution>>| r.flatten();
        let (s_lp, s_mw) = serial;
        let (p_lp, p_mw) = parallel;
        for (s, p) in [(flat(s_lp), flat(p_lp)), (flat(s_mw), flat(p_mw))] {
            prop_assert_eq!(s.is_some(), p.is_some());
            if let (Some(s), Some(p)) = (s, p) {
                prop_assert_eq!(&s.assignment, &p.assignment);
                prop_assert_eq!(s.cost.to_bits(), p.cost.to_bits());
                prop_assert_eq!(&s.unassigned_jobs(), &p.unassigned_jobs());
            }
        }
    }

    #[test]
    fn dense_and_sparse_instances_solve_identically(cfg in arb_config()) {
        // The CSR instance layout contract: generating the same config
        // with `candidate_pruned` on must yield bit-identical solver
        // output — the pruned pairs (μ = 0, or unaffordable even
        // alone) can never appear in any feasible plan. Checked at
        // both thread counts so the sparse path also honours the
        // determinism contract.
        let dense_cfg = cfg.clone();
        let sparse_cfg = GeneratorConfig { candidate_pruned: true, ..cfg };
        let (serial, parallel) = at_both_thread_counts(|| {
            let dense = GapBasedSolver::default().solve(&generate(&dense_cfg));
            let sparse = GapBasedSolver::default().solve(&generate(&sparse_cfg));
            (dense, sparse)
        });
        prop_assert_eq!(&serial.0.plan, &serial.1.plan);
        prop_assert_eq!(serial.0.utility.to_bits(), serial.1.utility.to_bits());
        prop_assert_eq!(&serial.1.plan, &parallel.1.plan);
        prop_assert_eq!(parallel.0.utility.to_bits(), parallel.1.utility.to_bits());
        prop_assert_eq!(serial.1.utility.to_bits(), parallel.1.utility.to_bits());
    }

    #[test]
    fn lns_is_thread_invariant(cfg in arb_config(), seed in 0u64..50) {
        let inst = generate(&cfg);
        let (serial, parallel) =
            at_both_thread_counts(|| LnsSolver::seeded(seed).solve(&inst));
        prop_assert_eq!(&serial.plan, &parallel.plan);
        prop_assert_eq!(serial.utility.to_bits(), parallel.utility.to_bits());
    }
}
