//! Thread-count determinism: the `epplan-par` contract says a parallel
//! run is bit-identical to a serial one (fixed chunk boundaries, chunk
//! results merged in index order). These properties pin that contract
//! end-to-end: every solver, and the generator itself, must produce
//! the *same plan and the same total utility, to the bit*, at
//! `threads = 1` and `threads = 4` on a single-core machine alike.

use epplan::core::solver::{LnsSolver, LocalSearch};
use epplan::datagen::{generate, GeneratorConfig};
use epplan::prelude::*;
use proptest::prelude::*;
use std::sync::Mutex;

/// The worker-count knob is process-global; integration-test cases run
/// on multiple threads, so every case that flips it holds this lock.
static THREADS: Mutex<()> = Mutex::new(());

/// Runs `f` at `threads = 1` and again at `threads = 4`, restoring the
/// serial default afterwards, and returns both results for comparison.
fn at_both_thread_counts<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = THREADS.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    epplan::par::set_threads(1);
    let serial = f();
    epplan::par::set_threads(4);
    let parallel = f();
    epplan::par::set_threads(1);
    (serial, parallel)
}

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (2usize..50, 1usize..10, 0u64..10_000, 0.0..0.6f64).prop_map(
        |(n_users, n_events, seed, conflict_ratio)| GeneratorConfig {
            n_users,
            n_events,
            seed,
            conflict_ratio,
            mean_lower: 2,
            mean_upper: 6,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generator_is_thread_invariant(cfg in arb_config()) {
        let (serial, parallel) = at_both_thread_counts(|| generate(&cfg));
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn greedy_is_thread_invariant(cfg in arb_config(), seed in 0u64..100) {
        let inst = generate(&cfg);
        let (serial, parallel) =
            at_both_thread_counts(|| GreedySolver::seeded(seed).solve(&inst));
        prop_assert_eq!(&serial.plan, &parallel.plan);
        prop_assert_eq!(serial.utility.to_bits(), parallel.utility.to_bits());
    }

    #[test]
    fn gap_based_is_thread_invariant(cfg in arb_config()) {
        let inst = generate(&cfg);
        let (serial, parallel) =
            at_both_thread_counts(|| GapBasedSolver::default().solve(&inst));
        prop_assert_eq!(&serial.plan, &parallel.plan);
        prop_assert_eq!(serial.utility.to_bits(), parallel.utility.to_bits());
    }

    #[test]
    fn local_search_is_thread_invariant(cfg in arb_config(), seed in 0u64..100) {
        let inst = generate(&cfg);
        let base = GreedySolver::seeded(seed).solve(&inst).plan;
        let (serial, parallel) = at_both_thread_counts(|| {
            let mut plan = base.clone();
            let gain = LocalSearch::default().improve(&inst, &mut plan);
            (plan, gain)
        });
        prop_assert_eq!(&serial.0, &parallel.0);
        prop_assert_eq!(serial.1.to_bits(), parallel.1.to_bits());
    }

    #[test]
    fn lns_is_thread_invariant(cfg in arb_config(), seed in 0u64..50) {
        let inst = generate(&cfg);
        let (serial, parallel) =
            at_both_thread_counts(|| LnsSolver::seeded(seed).solve(&inst));
        prop_assert_eq!(&serial.plan, &parallel.plan);
        prop_assert_eq!(serial.utility.to_bits(), parallel.utility.to_bits());
    }
}
