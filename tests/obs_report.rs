//! End-to-end contract of the offline trace analyzer: a solver run
//! recorded with `--trace` (JSONL spans) must round-trip through
//! `epplan report` into valid Perfetto JSON whose events match the
//! trace line for line, and the self-time / critical-path tables must
//! account for the run.

use serde::Deserialize;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_epplan"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("epplan-report-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn make_instance(dir: &Path) -> PathBuf {
    let inst = dir.join("inst.json");
    let out = bin()
        .args(["generate", "--users", "80", "--events", "10", "--seed", "7"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    inst
}

// Mirror of the Perfetto document, deserialized through the workspace
// serde shim to prove the emitted JSON is machine-readable.
#[derive(Debug, Deserialize)]
#[allow(non_snake_case)]
struct PerfettoDoc {
    displayTimeUnit: String,
    traceEvents: Vec<PerfettoEvent>,
}

#[derive(Debug, Deserialize)]
struct PerfettoEvent {
    name: String,
    ph: String,
    ts: u64,
    dur: u64,
    pid: u64,
    tid: u64,
    args: PerfettoArgs,
}

#[derive(Debug, Deserialize)]
struct PerfettoArgs {
    id: u64,
    #[serde(default)]
    parent: Option<u64>,
    iters: u64,
    mem_peak_bytes: u64,
    alloc_calls: u64,
}

/// `solve --trace` → `report --perfetto`: the table output accounts
/// for the solver stages and the Perfetto file holds exactly one
/// complete event per recorded span.
#[test]
fn solve_trace_reports_tables_and_perfetto_round_trip() {
    let dir = tmp_dir("cli");
    let inst = make_instance(&dir);
    let trace = dir.join("trace.jsonl");
    let out = bin()
        .args(["solve", "--instance", inst.to_str().unwrap()])
        .args(["--solver", "gap", "--trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let jsonl = std::fs::read_to_string(&trace).unwrap();
    let n_spans = jsonl.lines().filter(|l| !l.trim().is_empty()).count();
    assert!(n_spans > 3, "gap solve should record several spans:\n{jsonl}");

    let perfetto = dir.join("trace.perfetto.json");
    let out = bin()
        .args(["report", "--trace", trace.to_str().unwrap()])
        .args(["--perfetto", perfetto.to_str().unwrap(), "--top", "5"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(&format!("{n_spans} span(s)")), "{stdout}");
    assert!(stdout.contains("stage"), "{stdout}");
    assert!(stdout.contains("self%"), "{stdout}");
    assert!(stdout.contains("critical-path stage"), "{stdout}");
    // The gap pipeline's root span must appear in the tables.
    assert!(stdout.contains("gap.pipeline"), "{stdout}");

    let doc: PerfettoDoc =
        serde_json::from_str(&std::fs::read_to_string(&perfetto).unwrap())
            .unwrap_or_else(|e| panic!("perfetto output unparseable: {e:?}"));
    assert_eq!(doc.displayTimeUnit, "ms");
    assert_eq!(doc.traceEvents.len(), n_spans, "one complete event per span");
    for e in &doc.traceEvents {
        assert_eq!(e.ph, "X");
        assert_eq!((e.pid, e.tid), (1, 1));
        assert!(!e.name.is_empty());
    }
    // At least one root (parentless) span and one child span exist.
    assert!(doc.traceEvents.iter().any(|e| e.args.parent.is_none()));
    assert!(doc.traceEvents.iter().any(|e| e.args.parent.is_some()));
    // Span ids are unique and every parent link resolves to a span
    // that temporally contains its child.
    let mut ids: Vec<u64> = doc.traceEvents.iter().map(|e| e.args.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), doc.traceEvents.len(), "span ids must be unique");
    for e in &doc.traceEvents {
        if let Some(p) = e.args.parent {
            let parent = doc
                .traceEvents
                .iter()
                .find(|c| c.args.id == p)
                .unwrap_or_else(|| panic!("dangling parent {p}"));
            assert!(
                parent.ts <= e.ts && e.ts + e.dur <= parent.ts + parent.dur,
                "child {} not contained in parent {}",
                e.name,
                parent.name
            );
        }
    }
    // A real gap solve records iteration counts and (with the CLI's
    // counting allocator installed) allocator traffic.
    assert!(doc.traceEvents.iter().any(|e| e.args.iters > 0));
    assert!(doc.traceEvents.iter().any(|e| e.args.alloc_calls > 0));
    assert!(doc.traceEvents.iter().any(|e| e.args.mem_peak_bytes > 0));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Library round-trip: events captured in-process via `CollectingSink`
/// must produce the same Perfetto document as `epplan report` parsing
/// the JSONL serialization of those events — the two paths (in-memory
/// and file-based) are the same analyzer.
#[test]
fn jsonl_and_collecting_sink_agree() {
    let dir = tmp_dir("lib");
    let trace = dir.join("trace.jsonl");
    // Record a small deterministic span tree through the real tracing
    // machinery (spans write through the installed sink on drop).
    let sink = std::sync::Arc::new(epplan::obs::CollectingSink::default());
    epplan::obs::install_sink(sink.clone());
    {
        let mut root = epplan::obs::span("gap.pipeline");
        root.add_iters(3);
        {
            let _child = epplan::obs::span("lp.simplex");
        }
        {
            let _child = epplan::obs::span("gap.rounding");
        }
    }
    drop(epplan::obs::uninstall_sink());
    let events = sink.events();
    assert_eq!(events.len(), 3, "three spans recorded");
    let from_memory = epplan::obs::perfetto_json(&events);

    // Serialize the same events as trace JSONL (the JsonlSink format)
    // and push them through the CLI analyzer.
    let mut jsonl = String::new();
    for e in &events {
        let parent = e
            .parent
            .map_or(String::new(), |p| format!("\"parent\":{p},"));
        jsonl.push_str(&format!(
            "{{\"ts\":{},\"id\":{},{}\"span\":\"{}\",\"dur_us\":{},\"iters\":{},\"mem_peak_bytes\":{},\"alloc_calls\":{}}}\n",
            e.ts_us, e.id, parent, e.span, e.dur_us, e.iters, e.mem_peak_delta, e.alloc_calls
        ));
    }
    std::fs::write(&trace, jsonl).unwrap();
    let perfetto = dir.join("out.json");
    let out = bin()
        .args(["report", "--trace", trace.to_str().unwrap()])
        .args(["--perfetto", perfetto.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let from_file = std::fs::read_to_string(&perfetto).unwrap();
    assert_eq!(from_file, from_memory, "file and in-memory analyzers must agree");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Malformed traces fail loudly with the documented exit codes.
#[test]
fn report_error_contract() {
    let dir = tmp_dir("errors");
    // Missing file → io (3).
    let out = bin()
        .args(["report", "--trace", dir.join("nope.jsonl").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    // Garbage line → parse (4).
    let bad = dir.join("bad.jsonl");
    std::fs::write(&bad, "this is not json\n").unwrap();
    let out = bin()
        .args(["report", "--trace", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    // Empty trace → parse (4): zero events is an analysis error, not a
    // silent empty report.
    let empty = dir.join("empty.jsonl");
    std::fs::write(&empty, "").unwrap();
    let out = bin()
        .args(["report", "--trace", empty.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    // Missing --trace → usage (2).
    let out = bin().arg("report").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).unwrap();
}
