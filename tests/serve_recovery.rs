//! Crash/recovery contract of `epplan serve`: kill the daemon at any
//! injected fault site — or with a literal `SIGKILL` mid-stream —
//! restart with `--restore`, and the recovered plan is certified and
//! bit-identical to an uninterrupted run. Checked at `EPPLAN_THREADS`
//! 1 and 4 (the parallel runtime must not perturb recovery), plus a
//! WAL-corruption leg that must fail loudly with the `parse` exit
//! code rather than restore garbage.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_epplan"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("epplan-serve-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Generates a small instance + op stream into `dir`, returning
/// `(instance_path, ops_path)`.
fn make_fixture(dir: &Path, n_ops: usize) -> (PathBuf, PathBuf) {
    let inst = dir.join("inst.json");
    let ops = dir.join("ops.jsonl");
    let out = bin()
        .args(["generate", "--users", "60", "--events", "8", "--seed", "11"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = bin()
        .args(["opstream", "--instance", inst.to_str().unwrap()])
        .args(["--count", &n_ops.to_string(), "--seed", "23"])
        .args(["--out", ops.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    (inst, ops)
}

/// Common serve flags: deterministic budgets (iteration caps, never
/// wall-clock — recovery convergence is only *provable* clock-free),
/// frequent snapshots, and a drift trigger low enough to exercise the
/// re-solve path.
fn serve_args(inst: &Path, state: &Path, out_plan: &Path) -> Vec<String> {
    [
        "serve",
        "--instance",
        inst.to_str().unwrap(),
        "--state-dir",
        state.to_str().unwrap(),
        "--snapshot-every",
        "7",
        "--drift-threshold",
        "60",
        "--max-retries",
        "2",
        "--out",
        out_plan.to_str().unwrap(),
        "--quiet",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Runs the full stream uninterrupted and returns the plan bytes.
fn uninterrupted_plan(dir: &Path, inst: &Path, ops: &Path, threads: &str) -> Vec<u8> {
    let state = dir.join(format!("state-ref-{threads}"));
    let plan = dir.join(format!("plan-ref-{threads}.json"));
    let out = bin()
        .args(serve_args(inst, &state, &plan))
        .args(["--ops", ops.to_str().unwrap()])
        .env("EPPLAN_THREADS", threads)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"certified\":true"),
        "final summary must re-certify: {stdout}"
    );
    std::fs::read(&plan).unwrap()
}

/// A fixture bound to one thread count, shared by every crash leg.
struct Matrix<'a> {
    dir: &'a Path,
    inst: &'a Path,
    ops: &'a Path,
    threads: &'a str,
    reference: &'a [u8],
}

impl Matrix<'_> {
    /// Crash leg: run with `EPPLAN_FAULTS=<spec>` (expecting
    /// `want_exit`), then `--restore` and re-feed the whole stream;
    /// the recovered plan must match the reference byte for byte.
    fn crash_and_restore_leg(&self, tag: &str, fault_spec: &str, want_exit: i32) {
        let state = self.dir.join(format!("state-{tag}-{}", self.threads));
        let plan = self.dir.join(format!("plan-{tag}-{}.json", self.threads));
        let out = bin()
            .args(serve_args(self.inst, &state, &plan))
            .args(["--ops", self.ops.to_str().unwrap()])
            .env("EPPLAN_THREADS", self.threads)
            .env("EPPLAN_FAULTS", fault_spec)
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(want_exit),
            "fault {fault_spec} should kill the daemon with exit {want_exit}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // Restart WITHOUT the fault and re-feed the entire stream;
        // already durable ops are skipped as duplicates, the rest are
        // processed.
        let out = bin()
            .args(serve_args(self.inst, &state, &plan))
            .arg("--restore")
            .args(["--ops", self.ops.to_str().unwrap()])
            .env("EPPLAN_THREADS", self.threads)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "restore after {fault_spec} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let recovered = std::fs::read(&plan).unwrap();
        assert_eq!(
            recovered, self.reference,
            "recovered plan after {fault_spec} (threads {}) must be \
             bit-identical to the uninterrupted run",
            self.threads
        );
    }
}

fn recovery_matrix_for(threads: &str) {
    let dir = tmp_dir(&format!("matrix-{threads}"));
    let (inst, ops) = make_fixture(&dir, 40);
    let reference = uninterrupted_plan(&dir, &inst, &ops, threads);
    let m = Matrix {
        dir: &dir,
        inst: &inst,
        ops: &ops,
        threads,
        reference: &reference,
    };

    // WAL append fails on its 20th hit: mid-stream I/O death.
    m.crash_and_restore_leg("wal", "serve.wal.append@20=error", 3);
    // Snapshot write fails on its 3rd hit (hit 1 is the initial
    // snapshot at start; with --snapshot-every 7 hit 3 lands mid-run).
    m.crash_and_restore_leg("snap", "serve.snapshot.write@3=error", 3);
    // Repair ingest poisoned every time: ops degrade to full re-solves
    // but the daemon survives; this leg is about the *ladder*, so run
    // it to completion and expect the same certified end state only
    // when re-solves are deterministic — which they are (no budgets).
    let state = dir.join(format!("state-ingest-{threads}"));
    let plan = dir.join(format!("plan-ingest-{threads}.json"));
    let out = bin()
        .args(serve_args(&inst, &state, &plan))
        .args(["--ops", ops.to_str().unwrap()])
        .env("EPPLAN_THREADS", threads)
        .env("EPPLAN_FAULTS", "serve.op.ingest@5=error")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "a single ingest fault must degrade, not kill: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"certified\":true"),
        "degraded run must still certify: {stdout}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fault_crash_restore_is_bit_identical_threads_1() {
    recovery_matrix_for("1");
}

#[test]
fn fault_crash_restore_is_bit_identical_threads_4() {
    recovery_matrix_for("4");
}

/// The literal-`SIGKILL` leg: feed ops over stdin, kill the process
/// with no warning after a prefix of acknowledgements, restore, and
/// re-feed. `--crash-after-ops` (an `abort()` inside the daemon, i.e.
/// `SIGABRT` with zero cleanup) covers the deterministic variant in
/// CI; this test also sends a real `SIGKILL` from outside.
#[test]
fn sigkill_mid_stream_then_restore_is_bit_identical() {
    let dir = tmp_dir("sigkill");
    let (inst, ops) = make_fixture(&dir, 40);
    let reference = uninterrupted_plan(&dir, &inst, &ops, "1");
    let op_lines: Vec<String> = std::fs::read_to_string(&ops)
        .unwrap()
        .lines()
        .map(String::from)
        .collect();

    let state = dir.join("state-kill");
    let plan = dir.join("plan-kill.json");
    // No --ops: the daemon reads stdin and acks each op on stdout.
    let mut args = serve_args(&inst, &state, &plan);
    args.retain(|a| a != "--quiet"); // acks are the kill synchronization
    let mut child = bin()
        .args(&args)
        .env("EPPLAN_THREADS", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    let mut acks = BufReader::new(child.stdout.take().unwrap()).lines();
    for line in &op_lines[..17] {
        writeln!(stdin, "{line}").unwrap();
        stdin.flush().unwrap();
        let ack = acks.next().unwrap().unwrap();
        assert!(ack.contains("\"id\":"), "not an ack line: {ack}");
    }
    // Op 17 is durably logged and acknowledged. Kill -9, no goodbyes.
    child.kill().unwrap();
    child.wait().unwrap();

    let out = bin()
        .args(serve_args(&inst, &state, &plan))
        .arg("--restore")
        .args(["--ops", ops.to_str().unwrap()])
        .env("EPPLAN_THREADS", "1")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "restore after SIGKILL failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let recovered = std::fs::read(&plan).unwrap();
    assert_eq!(
        recovered, reference,
        "plan recovered after SIGKILL must match the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Corrupting a WAL byte must make `--restore` fail with the `parse`
/// exit code (4) — never silently restore damaged state.
#[test]
fn corrupted_wal_fails_restore_with_parse_exit() {
    let dir = tmp_dir("corrupt");
    let (inst, ops) = make_fixture(&dir, 20);
    let state = dir.join("state");
    let plan = dir.join("plan.json");
    // Crash mid-run so the WAL holds a suffix to replay.
    let out = bin()
        .args(serve_args(&inst, &state, &plan))
        .args(["--ops", ops.to_str().unwrap()])
        .env("EPPLAN_FAULTS", "serve.wal.append@12=error")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    // Flip a byte inside the first WAL frame's payload.
    let wal = state.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    assert!(bytes.len() > 12, "WAL should hold records");
    bytes[10] ^= 0xff;
    std::fs::write(&wal, &bytes).unwrap();
    let out = bin()
        .args(serve_args(&inst, &state, &plan))
        .arg("--restore")
        .args(["--ops", ops.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(4),
        "corrupted WAL must fail restore with the parse exit code: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `--crash-after-ops` (the deterministic SIGKILL stand-in used by the
/// CI chaos job) aborts after exactly N ops; restore converges.
#[test]
fn crash_after_ops_abort_then_restore_is_bit_identical() {
    let dir = tmp_dir("abort");
    let (inst, ops) = make_fixture(&dir, 40);
    let reference = uninterrupted_plan(&dir, &inst, &ops, "1");
    let state = dir.join("state");
    let plan = dir.join("plan.json");
    let out = bin()
        .args(serve_args(&inst, &state, &plan))
        .args(["--ops", ops.to_str().unwrap()])
        .args(["--crash-after-ops", "13"])
        .env("EPPLAN_THREADS", "1")
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "--crash-after-ops must abort the process"
    );
    let out = bin()
        .args(serve_args(&inst, &state, &plan))
        .arg("--restore")
        .args(["--ops", ops.to_str().unwrap()])
        .env("EPPLAN_THREADS", "1")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "restore after abort failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read(&plan).unwrap(), reference);
    std::fs::remove_dir_all(&dir).unwrap();
}
