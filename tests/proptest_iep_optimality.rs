//! Property test of the paper's central IEP claim: the repair
//! algorithms minimize the negative impact `dif(P, P′)`.
//!
//! For random tiny instances we compare each repair's `dif` against
//! the exact lexicographic optimum (`exact_iep` brute force). The
//! paper's algorithms are only *utility*-approximate; their `dif` is
//! claimed minimal whenever the updated lower bounds remain
//! satisfiable, which is exactly what we assert.

use epplan::core::incremental::{exact_iep, AtomicOp, IncrementalPlanner};
use epplan::datagen::{generate, GeneratorConfig};
use epplan::prelude::*;
use proptest::prelude::*;

fn tiny_instance(seed: u64) -> Instance {
    generate(&GeneratorConfig {
        n_users: 5,
        n_events: 4,
        seed,
        mean_lower: 1,
        mean_upper: 3,
        n_tags: 6,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn eta_decrease_dif_is_minimal(seed in 0u64..4000, ev in 0usize..4) {
        let inst = tiny_instance(seed);
        let base = GreedySolver::seeded(seed).solve(&inst);
        let plan = base.plan;
        let event = EventId(ev as u32);
        let n = plan.attendance(event);
        prop_assume!(n >= 2);
        let op = AtomicOp::EtaDecrease { event, new_upper: n / 2 };
        let approx = IncrementalPlanner.apply(&inst, &plan, &op);
        let solver = ExactSolver { max_users: 6, max_events: 5 };
        if let Some(exact) = exact_iep(&solver, &approx.instance, &plan) {
            // Only claim minimality when the repair restored full
            // feasibility (otherwise the exact optimum lives in a
            // different feasible region).
            if approx.shortfall.is_empty() {
                prop_assert_eq!(approx.dif, exact.dif,
                    "algorithm dif {} vs exact {}", approx.dif, exact.dif);
            }
            // With a shortfall the approximate plan lives outside the
            // fully-feasible region and no dif relation holds.
        }
    }

    #[test]
    fn xi_increase_dif_is_minimal(seed in 0u64..4000, ev in 0usize..4) {
        let inst = tiny_instance(seed ^ 0x55);
        let base = GreedySolver::seeded(seed).solve(&inst);
        let plan = base.plan;
        prop_assume!(base.shortfall.is_empty());
        let event = EventId(ev as u32);
        let n = plan.attendance(event);
        let upper = inst.event(event).upper;
        prop_assume!(n < upper);
        let op = AtomicOp::XiIncrease { event, new_lower: n + 1 };
        let approx = IncrementalPlanner.apply(&inst, &plan, &op);
        let solver = ExactSolver { max_users: 6, max_events: 5 };
        if let Some(exact) = exact_iep(&solver, &approx.instance, &plan) {
            if approx.shortfall.is_empty() {
                prop_assert_eq!(approx.dif, exact.dif);
                // A plan with equal dif and higher utility would
                // contradict the exact optimum's lexicographic order.
                prop_assert!(approx.utility <= exact.utility + 1e-9);
            }
        }
    }

    #[test]
    fn time_change_dif_close_to_minimal(seed in 0u64..2000, ev in 0usize..4) {
        use epplan::core::model::TimeInterval;
        let inst = tiny_instance(seed ^ 0xAA);
        let base = GreedySolver::seeded(seed).solve(&inst);
        let plan = base.plan;
        prop_assume!(base.shortfall.is_empty());
        let event = EventId(ev as u32);
        let t = inst.event(event).time;
        let op = AtomicOp::TimeChange {
            event,
            new_time: TimeInterval::new(t.start + 90, t.end + 90),
        };
        let approx = IncrementalPlanner.apply(&inst, &plan, &op);
        let solver = ExactSolver { max_users: 6, max_events: 5 };
        if let Some(exact) = exact_iep(&solver, &approx.instance, &plan) {
            if approx.shortfall.is_empty() {
                // Algorithm 5 removes *every* conflicted attendee before
                // refilling, which is minimal for the removal step; the
                // exact optimum can occasionally do better by swapping
                // the conflicting partner instead, so allow a small gap.
                prop_assert!(
                    approx.dif <= exact.dif + 2,
                    "dif {} far above exact {}", approx.dif, exact.dif
                );
            }
        }
    }
}
