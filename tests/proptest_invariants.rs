//! Property-based invariants across the whole pipeline: any generated
//! instance, any seed, any atomic operation — plans stay hard-feasible
//! and the bookkeeping (attendance counts, utilities, dif) stays
//! consistent.

use epplan::core::incremental::{AtomicOp, IncrementalPlanner};
use epplan::core::model::TimeInterval;
use epplan::core::plan::dif;
use epplan::datagen::{generate, GeneratorConfig};
use epplan::prelude::*;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (2usize..40, 1usize..10, 0u64..10_000, 0.0..0.6f64).prop_map(
        |(n_users, n_events, seed, conflict_ratio)| GeneratorConfig {
            n_users,
            n_events,
            seed,
            conflict_ratio,
            mean_lower: 2,
            mean_upper: 6,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn greedy_always_hard_feasible(cfg in arb_config(), seed in 0u64..100) {
        let inst = generate(&cfg);
        let sol = GreedySolver::seeded(seed).solve(&inst);
        let v = sol.plan.validate(&inst);
        prop_assert!(v.hard_ok(), "{:?}", v.violations);
    }

    #[test]
    fn gap_always_hard_feasible(cfg in arb_config()) {
        let inst = generate(&cfg);
        let sol = GapBasedSolver::default().solve(&inst);
        let v = sol.plan.validate(&inst);
        prop_assert!(v.hard_ok(), "{:?}", v.violations);
    }

    #[test]
    fn attendance_counts_consistent(cfg in arb_config(), seed in 0u64..100) {
        let inst = generate(&cfg);
        let plan = GreedySolver::seeded(seed).solve(&inst).plan;
        for e in inst.event_ids() {
            let listed = plan.attendees(e).len() as u32;
            prop_assert_eq!(listed, plan.attendance(e));
        }
        let total: usize = inst.event_ids().map(|e| plan.attendance(e) as usize).sum();
        prop_assert_eq!(total, plan.total_assignments());
    }

    #[test]
    fn utility_is_sum_of_user_utilities(cfg in arb_config(), seed in 0u64..100) {
        let inst = generate(&cfg);
        let sol = GreedySolver::seeded(seed).solve(&inst);
        let total: f64 = inst
            .user_ids()
            .map(|u| sol.plan.user_utility(&inst, u))
            .sum();
        prop_assert!((total - sol.utility).abs() < 1e-6);
    }

    #[test]
    fn incremental_ops_preserve_feasibility(
        cfg in arb_config(),
        op_kind in 0usize..6,
        ev in 0usize..10,
        val in 0u32..8,
    ) {
        let inst = generate(&cfg);
        let plan = GreedySolver::seeded(1).solve(&inst).plan;
        let e = EventId((ev % inst.n_events()) as u32);
        let op = match op_kind {
            0 => AtomicOp::EtaDecrease { event: e, new_upper: val.max(1) },
            1 => AtomicOp::EtaIncrease {
                event: e,
                new_upper: inst.event(e).upper + val,
            },
            2 => AtomicOp::XiIncrease {
                event: e,
                new_lower: val.min(inst.event(e).upper),
            },
            3 => AtomicOp::XiDecrease { event: e, new_lower: 0 },
            4 => {
                let t = inst.event(e).time;
                AtomicOp::TimeChange {
                    event: e,
                    new_time: TimeInterval::new(t.start + val * 17, t.end + val * 17),
                }
            }
            _ => AtomicOp::BudgetChange {
                user: UserId(0),
                new_budget: val as f64 * 20.0,
            },
        };
        let out = IncrementalPlanner.apply(&inst, &plan, &op);
        let v = out.plan.validate(&out.instance);
        prop_assert!(v.hard_ok(), "op {:?}: {:?}", op, v.violations);
        // dif is consistent with the plans.
        prop_assert_eq!(out.dif, dif(&plan, &out.plan));
    }

    #[test]
    fn dif_is_monotone_under_extra_removals(
        cfg in arb_config(),
        seed in 0u64..50,
    ) {
        let inst = generate(&cfg);
        let plan = GreedySolver::seeded(seed).solve(&inst).plan;
        let mut smaller = plan.clone();
        // Remove one arbitrary assignment if any exist.
        let mut removed = false;
        'outer: for u in inst.user_ids() {
            if let Some(&e) = smaller.user_plan(u).first() {
                smaller.remove(u, e);
                removed = true;
                break 'outer;
            }
        }
        if removed {
            prop_assert_eq!(dif(&plan, &smaller), 1);
            prop_assert_eq!(dif(&smaller, &plan), 0, "additions are free");
        }
    }

    #[test]
    fn exact_dominates_approximations_when_feasible(
        seed in 0u64..300,
    ) {
        let inst = generate(&GeneratorConfig {
            n_users: 4,
            n_events: 4,
            seed,
            mean_lower: 1,
            mean_upper: 3,
            n_tags: 6,
            ..Default::default()
        });
        let exact = ExactSolver { max_users: 5, max_events: 5 }.solve_optimal(&inst);
        if let Some(exact) = exact {
            // Dominance only holds over the same feasible region: an
            // approximate plan that *fails* some lower bound is outside
            // it and may legally carry more raw utility.
            let greedy = GreedySolver::seeded(0).solve(&inst);
            if greedy.fully_feasible() {
                prop_assert!(exact.utility >= greedy.utility - 1e-9);
            }
            let gap = GapBasedSolver::default().solve(&inst);
            if gap.fully_feasible() {
                prop_assert!(exact.utility >= gap.utility - 1e-9);
            }
        }
    }
}
