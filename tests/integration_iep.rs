//! Cross-crate integration tests for the IEP repair algorithms.

use epplan::core::incremental::{AtomicOp, IncrementalPlanner};
use epplan::core::model::{Event, TimeInterval};
use epplan::datagen::{generate, GeneratorConfig};
use epplan::geo::Point;
use epplan::prelude::*;
use rand::prelude::*;

fn setup(seed: u64) -> (Instance, epplan::core::plan::Plan) {
    let inst = generate(&GeneratorConfig {
        n_users: 80,
        n_events: 14,
        seed,
        mean_lower: 3,
        mean_upper: 12,
        ..Default::default()
    });
    let plan = GreedySolver::seeded(seed).solve(&inst).plan;
    (inst, plan)
}

fn random_op(inst: &Instance, plan: &epplan::core::plan::Plan, rng: &mut StdRng) -> AtomicOp {
    let e = EventId(rng.gen_range(0..inst.n_events()) as u32);
    let u = UserId(rng.gen_range(0..inst.n_users()) as u32);
    match rng.gen_range(0..9) {
        0 => AtomicOp::EtaDecrease {
            event: e,
            new_upper: plan.attendance(e).saturating_sub(1).max(1),
        },
        1 => AtomicOp::EtaIncrease {
            event: e,
            new_upper: inst.event(e).upper + 5,
        },
        2 => AtomicOp::XiIncrease {
            event: e,
            new_lower: (plan.attendance(e) + 2).min(inst.event(e).upper),
        },
        3 => AtomicOp::XiDecrease {
            event: e,
            new_lower: inst.event(e).lower / 2,
        },
        4 => {
            let t = inst.event(e).time;
            AtomicOp::TimeChange {
                event: e,
                new_time: TimeInterval::new(t.start + 45, t.end + 45),
            }
        }
        5 => AtomicOp::LocationChange {
            event: e,
            new_location: Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)),
        },
        6 => AtomicOp::NewEvent {
            event: Event::new(
                Point::new(50.0, 50.0),
                2,
                15,
                TimeInterval::new(30_000, 30_120),
            ),
            utilities: (0..inst.n_users())
                .map(|k| if k % 2 == 0 { 0.5 } else { 0.0 })
                .collect(),
        },
        7 => AtomicOp::UtilityChange {
            user: u,
            event: e,
            new_utility: if rng.gen_bool(0.5) { 0.0 } else { 0.75 },
        },
        _ => AtomicOp::BudgetChange {
            user: u,
            new_budget: rng.gen_range(0.0..200.0),
        },
    }
}

#[test]
fn random_op_stream_preserves_feasibility() {
    let (mut inst, mut plan) = setup(1);
    let planner = IncrementalPlanner;
    let mut rng = StdRng::seed_from_u64(42);
    for step in 0..40 {
        let op = random_op(&inst, &plan, &mut rng);
        let out = planner.apply(&inst, &plan, &op);
        let v = out.plan.validate(&out.instance);
        assert!(
            v.hard_ok(),
            "step {step} op {op:?} violations {:?}",
            v.violations
        );
        inst = out.instance;
        plan = out.plan;
    }
}

#[test]
fn eta_decrease_dif_is_exactly_the_paper_minimum() {
    let (inst, plan) = setup(2);
    // Pick the busiest event so the repair has real work.
    let e = inst
        .event_ids()
        .max_by_key(|&e| plan.attendance(e))
        .unwrap();
    let n = plan.attendance(e);
    assert!(n >= 2, "premise: busiest event has ≥ 2 attendees");
    let new_upper = n / 2;
    let out = IncrementalPlanner.apply(
        &inst,
        &plan,
        &AtomicOp::EtaDecrease {
            event: e,
            new_upper,
        },
    );
    // dif(P, P') = n_j − η'_j (Section IV-A).
    assert_eq!(out.dif, (n - new_upper) as usize);
}

#[test]
fn additive_ops_have_zero_dif() {
    let (inst, plan) = setup(3);
    let planner = IncrementalPlanner;
    let e = EventId(0);
    for op in [
        AtomicOp::EtaIncrease {
            event: e,
            new_upper: inst.event(e).upper + 10,
        },
        AtomicOp::XiDecrease {
            event: e,
            new_lower: 0,
        },
        AtomicOp::BudgetChange {
            user: UserId(0),
            new_budget: inst.user(UserId(0)).budget * 2.0,
        },
    ] {
        let out = planner.apply(&inst, &plan, &op);
        assert_eq!(out.dif, 0, "op {op:?} caused losses");
        assert!(out.utility >= plan.total_utility(&inst) - 1e-9);
    }
}

#[test]
fn incremental_utility_tracks_rerun_utility() {
    // Section V-C's headline: incremental repair utilities are "almost
    // the same" as re-running the solver from scratch. Check they stay
    // within 20% across a batch of η decreases.
    let (inst, plan) = setup(4);
    let planner = IncrementalPlanner;
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..10 {
        let e = EventId(rng.gen_range(0..inst.n_events()) as u32);
        let n = plan.attendance(e);
        if n < 2 {
            continue;
        }
        let out = planner.apply(
            &inst,
            &plan,
            &AtomicOp::EtaDecrease {
                event: e,
                new_upper: n / 2,
            },
        );
        let rerun = GreedySolver::seeded(11).solve(&out.instance);
        assert!(
            out.utility >= 0.8 * rerun.utility,
            "incremental {} far below rerun {}",
            out.utility,
            rerun.utility
        );
    }
}

#[test]
fn incremental_is_much_cheaper_than_rerun() {
    // The point of IEP: repair beats recompute on wall-clock.
    let inst = generate(&GeneratorConfig {
        n_users: 800,
        n_events: 40,
        seed: 5,
        mean_lower: 5,
        mean_upper: 25,
        ..Default::default()
    });
    let solver = GreedySolver::seeded(5);
    let plan = solver.solve(&inst).plan;
    let e = inst
        .event_ids()
        .max_by_key(|&e| plan.attendance(e))
        .unwrap();
    let op = AtomicOp::EtaDecrease {
        event: e,
        new_upper: (plan.attendance(e) / 2).max(1),
    };

    let t0 = std::time::Instant::now();
    let out = IncrementalPlanner.apply(&inst, &plan, &op);
    let inc = t0.elapsed();

    let t1 = std::time::Instant::now();
    let _ = solver.solve(&out.instance);
    let rerun = t1.elapsed();

    assert!(
        inc < rerun,
        "incremental {inc:?} not faster than rerun {rerun:?}"
    );
}

#[test]
fn new_event_is_reduction_to_xi_increase() {
    let (inst, plan) = setup(6);
    let out = IncrementalPlanner.apply(
        &inst,
        &plan,
        &AtomicOp::NewEvent {
            event: Event::new(
                Point::new(50.0, 50.0),
                4,
                20,
                TimeInterval::new(40_000, 40_090),
            ),
            utilities: vec![0.7; inst.n_users()],
        },
    );
    let new_id = EventId(inst.n_events() as u32);
    assert_eq!(out.instance.n_events(), inst.n_events() + 1);
    assert!(
        out.plan.attendance(new_id) >= 4 || out.shortfall.contains(&new_id),
        "either the lower bound is met or it is reported"
    );
    assert!(out.plan.validate(&out.instance).hard_ok());
}

#[test]
fn utility_zero_forces_removal_everywhere() {
    let (inst, plan) = setup(7);
    let planner = IncrementalPlanner;
    // One event's worth of removals is plenty.
    if let Some(e) = inst.event_ids().next() {
        for u in plan.attendees(e) {
            let out = planner.apply(
                &inst,
                &plan,
                &AtomicOp::UtilityChange {
                    user: u,
                    event: e,
                    new_utility: 0.0,
                },
            );
            assert!(!out.plan.contains(u, e));
            assert!(out.plan.validate(&out.instance).hard_ok());
        }
    }
}
