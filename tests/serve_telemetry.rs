//! Telemetry-plane contract of `epplan serve`:
//!
//! * `--metrics-socket` answers every connection with one valid
//!   Prometheus text scrape — mid-stream, from the serving thread —
//!   including windowed latency quantiles and an `epplan_health` line;
//! * scraping must not perturb the plan: the `--out` bytes are
//!   bit-identical to a no-scrape run, at `EPPLAN_THREADS` 1 and 4;
//! * a faulted scrape (`serve.metrics.scrape`) is dropped or corrupted
//!   on the wire but never stalls ingestion or changes the plan;
//! * the daemon's windowed quantiles agree with the shared
//!   `HistogramSnapshot` estimator replayed over the recorded latency
//!   suffix;
//! * `--slo-p99-us` burn accounting surfaces in per-op acks and the
//!   final summary.

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_epplan"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("epplan-telemetry-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Generates a small instance + sequenced op stream into `dir`.
fn make_fixture(dir: &Path, n_ops: usize) -> (PathBuf, PathBuf) {
    let inst = dir.join("inst.json");
    let ops = dir.join("ops.jsonl");
    let out = bin()
        .args(["generate", "--users", "60", "--events", "8", "--seed", "11"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = bin()
        .args(["opstream", "--instance", inst.to_str().unwrap()])
        .args(["--count", &n_ops.to_string(), "--seed", "23"])
        .args(["--out", ops.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    (inst, ops)
}

/// Reference run: whole stream from a file, no metrics socket; returns
/// the certified plan bytes.
fn reference_plan(dir: &Path, inst: &Path, ops: &Path, threads: &str) -> Vec<u8> {
    let plan = dir.join(format!("plan-ref-{threads}.json"));
    let out = bin()
        .args(["serve", "--instance", inst.to_str().unwrap()])
        .args(["--ops", ops.to_str().unwrap()])
        .args(["--out", plan.to_str().unwrap()])
        .arg("--quiet")
        .env("EPPLAN_THREADS", threads)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"certified\":true"));
    std::fs::read(&plan).unwrap()
}

/// Spawns `epplan serve --socket --metrics-socket`, waits for both
/// sockets to come up, and returns the child plus a connected op
/// stream.
fn spawn_socket_daemon(
    inst: &Path,
    ops_sock: &Path,
    metrics_sock: &Path,
    plan_out: &Path,
    threads: &str,
    fault: Option<&str>,
) -> (Child, UnixStream) {
    let mut cmd = bin();
    cmd.args(["serve", "--instance", inst.to_str().unwrap()])
        .args(["--socket", ops_sock.to_str().unwrap()])
        .args(["--metrics-socket", metrics_sock.to_str().unwrap()])
        .args(["--out", plan_out.to_str().unwrap()])
        .env("EPPLAN_THREADS", threads)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(spec) = fault {
        cmd.env("EPPLAN_FAULTS", spec);
    }
    let child = cmd.spawn().unwrap();
    // The daemon binds the metrics socket before accepting ops; wait
    // for the ops socket to accept a connection.
    let mut stream = None;
    for _ in 0..200 {
        if let Ok(s) = UnixStream::connect(ops_sock) {
            stream = Some(s);
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let stream = stream.expect("ops socket never came up");
    assert!(metrics_sock.exists(), "metrics socket not bound");
    (child, stream)
}

/// Connects to the metrics socket and reads one whole scrape. The
/// daemon only answers between ops, so `kick` is called after
/// connecting to push one op through (unblocking the poll).
fn scrape(metrics_sock: &Path, mut kick: impl FnMut()) -> String {
    let mut conn = UnixStream::connect(metrics_sock).expect("connect metrics socket");
    conn.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    kick();
    let mut text = String::new();
    conn.read_to_string(&mut text).expect("read scrape");
    text
}

fn socket_run_with_scrapes(
    dir: &Path,
    inst: &Path,
    ops: &Path,
    threads: &str,
    fault: Option<&str>,
) -> (Vec<u8>, Vec<String>) {
    let tag = fault.map(|_| "fault").unwrap_or("clean");
    let ops_sock = dir.join(format!("ops-{tag}-{threads}.sock"));
    let metrics_sock = dir.join(format!("metrics-{tag}-{threads}.sock"));
    let plan = dir.join(format!("plan-{tag}-{threads}.json"));
    let op_lines: Vec<String> = std::fs::read_to_string(ops)
        .unwrap()
        .lines()
        .map(String::from)
        .collect();
    let (mut child, stream) =
        spawn_socket_daemon(inst, &ops_sock, &metrics_sock, &plan, threads, fault);
    let mut writer = stream.try_clone().unwrap();
    let mut acks = BufReader::new(stream).lines();
    let mut send_op = |i: usize| {
        writeln!(writer, "{}", op_lines[i]).unwrap();
        writer.flush().unwrap();
        let ack = acks.next().unwrap().unwrap();
        assert!(ack.contains("\"id\":"), "not an ack: {ack}");
        assert!(
            ack.contains("\"slo_burning\":"),
            "acks must carry the SLO flag: {ack}"
        );
    };
    // Warm up, then scrape mid-stream (twice — the second proves the
    // endpoint survives its first client), then drain the stream.
    let mut scrapes = Vec::new();
    let mut next = 0usize;
    for _ in 0..10 {
        send_op(next);
        next += 1;
    }
    scrapes.push(scrape(&metrics_sock, || {
        send_op(next);
        next += 1;
    }));
    for _ in 0..5 {
        send_op(next);
        next += 1;
    }
    scrapes.push(scrape(&metrics_sock, || {
        send_op(next);
        next += 1;
    }));
    while next < op_lines.len() {
        send_op(next);
        next += 1;
    }
    drop(writer);
    drop(acks); // closes the ops socket: the daemon finishes and exits
    let status = child.wait().unwrap();
    assert!(status.success(), "daemon exit: {status:?}");
    assert!(
        !metrics_sock.exists(),
        "metrics socket file must be removed on shutdown"
    );
    (std::fs::read(&plan).unwrap(), scrapes)
}

fn scrape_matrix_for(threads: &str) {
    let dir = tmp_dir(&format!("scrape-{threads}"));
    let (inst, ops) = make_fixture(&dir, 40);
    let reference = reference_plan(&dir, &inst, &ops, threads);

    let (plan, scrapes) = socket_run_with_scrapes(&dir, &inst, &ops, threads, None);
    assert_eq!(
        plan, reference,
        "scraping must not perturb the plan (threads {threads})"
    );
    for text in &scrapes {
        epplan::obs::validate_prometheus(text)
            .unwrap_or_else(|e| panic!("invalid exposition: {e}\n---\n{text}"));
        assert!(text.contains("epplan_serve_ops "), "ops counter missing:\n{text}");
        assert!(
            text.contains("epplan_serve_op_latency_us_bucket{le="),
            "latency histogram missing:\n{text}"
        );
        assert!(
            text.contains("epplan_serve_window_op_latency_us{quantile=\"0.99\"}"),
            "windowed quantiles missing:\n{text}"
        );
        assert!(
            text.contains("epplan_health{certified=\"true\""),
            "health line missing or uncertified:\n{text}"
        );
        assert!(text.contains("epplan_serve_wal_pending_ops"), "WAL gauge missing");
    }
    // The second scrape happened later in the stream: its op counter
    // must be strictly larger.
    let count = |t: &str| -> u64 {
        t.lines()
            .find_map(|l| l.strip_prefix("epplan_serve_ops "))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("no epplan_serve_ops sample"))
    };
    assert!(count(&scrapes[1]) > count(&scrapes[0]));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn midstream_scrape_is_valid_and_plan_invariant_threads_1() {
    scrape_matrix_for("1");
}

#[test]
fn midstream_scrape_is_valid_and_plan_invariant_threads_4() {
    scrape_matrix_for("4");
}

/// Chaos leg: the first scrape hits the registered
/// `serve.metrics.scrape` fault site (`@1`). `error` drops the
/// connection unanswered; `nan` writes a corrupted body. Either way
/// ingestion finishes, the *next* scrape recovers (and reports the
/// failure via `obs.scrape.errors`), and the plan is bit-identical to
/// the reference.
#[test]
fn faulted_scrape_never_stalls_ingestion_or_changes_the_plan() {
    let dir = tmp_dir("chaos");
    let (inst, ops) = make_fixture(&dir, 40);
    let reference = reference_plan(&dir, &inst, &ops, "1");

    let (plan, scrapes) =
        socket_run_with_scrapes(&dir, &inst, &ops, "1", Some("serve.metrics.scrape@1=error"));
    assert_eq!(plan, reference, "dropped scrape must not change the plan");
    assert!(
        scrapes[0].is_empty(),
        "faulted scrape should be dropped, got:\n{}",
        scrapes[0]
    );
    epplan::obs::validate_prometheus(&scrapes[1])
        .unwrap_or_else(|e| panic!("endpoint must recover after a fault: {e}"));
    assert!(
        scrapes[1].contains("epplan_obs_scrape_errors 1"),
        "recovered scrape must report the earlier failure:\n{}",
        scrapes[1]
    );

    let (plan, scrapes) =
        socket_run_with_scrapes(&dir, &inst, &ops, "1", Some("serve.metrics.scrape@1=nan"));
    assert_eq!(plan, reference, "corrupted scrape must not change the plan");
    assert!(
        scrapes[0].contains("corrupted scrape"),
        "poisoned scrape should be visibly corrupt, got:\n{}",
        scrapes[0]
    );
    assert!(
        epplan::obs::validate_prometheus(&scrapes[0]).is_err(),
        "poisoned scrape must NOT validate"
    );
    epplan::obs::validate_prometheus(&scrapes[1])
        .unwrap_or_else(|e| panic!("endpoint must recover after poison: {e}"));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Library leg: the daemon's windowed quantiles must agree with the
/// shared estimator replayed over the recorded latency suffix — at
/// worker counts 1 and 4 (the window is fed from the single serving
/// thread either way).
#[test]
fn windowed_quantiles_match_shared_estimator_on_recorded_suffix() {
    use epplan::core::solver::{GepcSolver, GreedySolver};
    use epplan::serve::{Daemon, ServeConfig};
    for threads in [1usize, 4] {
        epplan::par::set_threads(threads);
        let instance = epplan::datagen::generate(&epplan::datagen::GeneratorConfig {
            n_users: 60,
            n_events: 8,
            seed: 11,
            ..Default::default()
        });
        let plan = GreedySolver::seeded(23).solve(&instance).plan;
        let mut sampler = epplan::datagen::OpStreamSampler::new(23);
        let ops = sampler.sequenced_stream(&instance, &plan, 150, 1);
        let config = ServeConfig {
            slo_window_ops: 64,
            ..Default::default()
        };
        let mut daemon = Daemon::start(instance, config, None).unwrap();
        for sop in &ops {
            daemon.process(sop).unwrap();
        }
        let latencies = &daemon.stats().latencies_us;
        let n = daemon.window_len() as usize;
        assert!(n > 0 && n <= 64, "window length out of range: {n}");
        assert!(latencies.len() >= n);
        // Count-driven rotation retains exactly the latency suffix.
        let suffix = &latencies[latencies.len() - n..];
        let exact = epplan::obs::HistogramSnapshot::from_values_pow2(suffix);
        for p in [0.5, 0.9, 0.95, 0.99] {
            assert_eq!(
                daemon.window_quantile(p),
                exact.quantile(p),
                "window p{p} disagrees with the shared estimator (threads {threads})"
            );
        }
    }
}

/// An impossible SLO (p99 ≤ 1µs) must burn: flagged acks, a burn
/// counter in the summary, and windowed quantiles in the summary JSON.
#[test]
fn slo_burn_surfaces_in_acks_and_summary() {
    let dir = tmp_dir("slo");
    let (inst, ops) = make_fixture(&dir, 30);
    let out = bin()
        .args(["serve", "--instance", inst.to_str().unwrap()])
        .args(["--ops", ops.to_str().unwrap()])
        .args(["--slo-p99-us", "1", "--slo-window-ops", "16"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"slo_burning\":true"),
        "acks must flag the burn: {stdout}"
    );
    let summary = stdout
        .lines()
        .find(|l| l.contains("\"slo_burning_ops\""))
        .unwrap_or_else(|| panic!("no summary line: {stdout}"));
    assert!(summary.contains("\"window_p99_us\""), "summary: {summary}");
    // Every op except the very first (which sees an empty window
    // before its own latency lands... it still observes itself first)
    // should count as burning against a 1µs target.
    let burning: u64 = summary
        .split("\"slo_burning_ops\":")
        .nth(1)
        .and_then(|s| {
            s.split(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|d| d.parse().ok())
        })
        .unwrap();
    assert!(burning > 0, "burn counter stayed zero: {summary}");
    std::fs::remove_dir_all(&dir).unwrap();
}
