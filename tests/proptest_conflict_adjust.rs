//! Property tests for Algorithm 1 (Conflict Adjusting) on arbitrary
//! raw GAP outputs: whatever conflicted multiset the GAP stage hands
//! over, the adjusted plan must be free of time conflicts and
//! duplicates, and budget repair must then enforce every budget.

use epplan::core::solver::conflict_adjust::{budget_repair, conflict_adjust};
use epplan::datagen::{generate, GeneratorConfig};
use epplan::prelude::*;
use proptest::prelude::*;

fn arb_setup() -> impl Strategy<Value = (Instance, Vec<Vec<EventId>>)> {
    (3usize..25, 2usize..8, 0u64..5_000, 0usize..60).prop_map(
        |(n_users, n_events, seed, n_raw)| {
            use rand::{Rng, SeedableRng};
            let inst = generate(&GeneratorConfig {
                n_users,
                n_events,
                seed,
                mean_lower: 2,
                mean_upper: 6,
                conflict_ratio: 0.5, // plenty of conflicts to trip over
                ..Default::default()
            });
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xF00D);
            // Raw multiset: random (user, event) incidences, with
            // duplicates allowed — mimicking GAP copies.
            let mut raw = vec![Vec::new(); n_users];
            for _ in 0..n_raw {
                let u = rng.gen_range(0..n_users);
                let e = EventId(rng.gen_range(0..n_events) as u32);
                raw[u].push(e);
            }
            (inst, raw)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adjusted_plans_have_no_conflicts_or_duplicates(
        (inst, raw) in arb_setup(),
    ) {
        let plan = conflict_adjust(&inst, raw);
        for u in inst.user_ids() {
            let evs = plan.user_plan(u);
            for (i, &a) in evs.iter().enumerate() {
                for &b in &evs[i + 1..] {
                    prop_assert_ne!(a, b, "duplicate event in {}", u);
                    prop_assert!(
                        !inst.conflicts(a, b),
                        "conflict {}/{} left in {}", a, b, u
                    );
                }
            }
        }
    }

    #[test]
    fn budget_repair_enforces_every_budget(
        (inst, raw) in arb_setup(),
    ) {
        let mut plan = conflict_adjust(&inst, raw);
        budget_repair(&inst, &mut plan);
        for u in inst.user_ids() {
            prop_assert!(
                plan.travel_cost(&inst, u) <= inst.user(u).budget + 1e-6,
                "user {} over budget", u
            );
        }
        // And conflicts stay resolved: reassignments during repair
        // also validated against conflicts.
        for u in inst.user_ids() {
            let evs = plan.user_plan(u);
            for (i, &a) in evs.iter().enumerate() {
                for &b in &evs[i + 1..] {
                    prop_assert!(!inst.conflicts(a, b));
                }
            }
        }
    }

    #[test]
    fn adjusting_preserves_total_copies_or_less(
        (inst, raw) in arb_setup(),
    ) {
        let total_in: usize = raw.iter().map(Vec::len).sum();
        let plan = conflict_adjust(&inst, raw);
        // Conflict adjusting can only drop copies, never mint new ones.
        prop_assert!(plan.total_assignments() <= total_in);
    }
}
