//! Chaos matrix: every registered fault-injection site crossed with
//! every fault action and every solver entry point (lp, flow, gap,
//! exact, greedy, gap_based, iep). The contract under test is the
//! robustness tentpole of the fault layer:
//!
//! * **never a panic** — every entry point stays total under injected
//!   faults;
//! * **never an uncertified plan** — a run that reports success (or
//!   carries a fallback partial) must pass independent certification
//!   of every GEPC hard constraint.
//!
//! Fault state is process-global, so every test serializes on one
//! mutex and disarms through a drop guard (panic-safe).

use epplan::core::certify::certify;
use epplan::core::incremental::{AtomicOp, IncrementalPlanner};
use epplan::core::model::{Event, Instance, TimeInterval, User, UtilityMatrix};
use epplan::core::solver::SolveBudget;
use epplan::fault::{FaultAction, FaultPlan};
use epplan::gap::{GapConfig, GapInstance, GapSolver as GapPipeline};
use epplan::lp::{Problem, Relation};
use epplan::prelude::*;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests touching the process-global fault plan. Poison is
/// tolerated: a previous test's assertion failure must not cascade.
fn exclusive() -> MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Disarms the fault layer when dropped, even on panic.
struct Armed;

impl Drop for Armed {
    fn drop(&mut self) {
        epplan::fault::clear();
    }
}

fn arm(plan: FaultPlan) -> Armed {
    epplan::fault::install(plan);
    Armed
}

/// Builds a single-fault plan for a registered site; the registry loop
/// guarantees validity.
fn plan_for(site: &str, hit: u64, action: FaultAction) -> FaultPlan {
    FaultPlan::single_at(site, hit, action)
        .unwrap_or_else(|e| panic!("plan for registered site {site}: {e}"))
}

const ACTIONS: [FaultAction; 4] = [
    FaultAction::TypedError,
    FaultAction::DeadlineTrip,
    FaultAction::PoisonValue,
    FaultAction::AllocPressure,
];

/// A small but non-trivial GEPC instance: overlapping time windows,
/// one tight budget, one zero-utility pair, ξ > 0 lower bounds.
fn instance() -> Instance {
    let users = vec![
        User::new(Point::new(0.0, 0.0), 50.0),
        User::new(Point::new(1.0, 0.0), 50.0),
        User::new(Point::new(2.0, 0.0), 50.0),
        User::new(Point::new(3.0, 0.0), 4.0),
    ];
    let events = vec![
        Event::new(Point::new(0.0, 1.0), 2, 3, TimeInterval::new(0, 59)),
        Event::new(Point::new(0.0, 2.0), 1, 2, TimeInterval::new(30, 119)),
        Event::new(Point::new(4.0, 1.0), 0, 2, TimeInterval::new(140, 200)),
    ];
    let utilities = UtilityMatrix::from_rows(vec![
        vec![0.9, 0.4, 0.3],
        vec![0.7, 0.8, 0.2],
        vec![0.5, 0.6, 0.9],
        vec![0.3, 0.0, 0.8],
    ]).unwrap();
    Instance::new(users, events, utilities).unwrap()
}

/// Asserts the universal outcome contract for a GEPC solve under an
/// armed fault: a success must certify, a failure must be typed and
/// any fallback partial must certify too.
fn assert_certified_or_typed(
    label: &str,
    instance: &Instance,
    result: Result<Solution, epplan::solve::SolveError<Solution>>,
) {
    match result {
        Ok(sol) => {
            let cert = certify(instance, &sol.plan);
            assert!(
                cert.hard_ok(),
                "{label}: success returned an uncertified plan: {cert}"
            );
        }
        Err(e) => {
            assert!(!e.message.is_empty(), "{label}: typed error without message");
            if let Some(partial) = e.partial {
                let cert = certify(instance, &partial.plan);
                assert!(
                    cert.hard_ok(),
                    "{label}: fallback partial is uncertified: {cert}"
                );
            }
        }
    }
}

/// Entry point: the dense simplex (carries `lp.simplex.pivot`).
fn run_lp() {
    let mut lp = Problem::minimize(2);
    lp.set_objective(&[(0, 1.0), (1, 2.0)]);
    lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 1.0);
    lp.add_constraint(&[(0, 1.0)], Relation::Le, 0.7);
    match lp.solve_with_budget(SolveBudget::UNLIMITED) {
        Ok(sol) => assert!(sol.x.iter().all(|v| v.is_finite())),
        Err(e) => assert!(!e.message.is_empty()),
    }
}

/// Entry point: min-cost assignment (carries `flow.mcmf.augment`).
fn run_flow() {
    let edges = [(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 1.0)];
    match epplan::flow::min_cost_assignment_with_budget(2, 2, &edges, &[1, 1], SolveBudget::UNLIMITED)
    {
        Ok(a) => assert_eq!(a.left_to_right.len(), 2),
        Err(e) => assert!(!e.message.is_empty()),
    }
}

/// Entry point: the GAP pipeline (carries the three `gap.*` sites).
fn run_gap() {
    let g = GapInstance::from_matrices(
        vec![vec![1.0, 4.0, 2.0], vec![2.0, 1.0, 3.0]],
        vec![vec![1.0, 2.0, 1.5], vec![2.0, 1.0, 1.0]],
        vec![2.5, 2.0],
    );
    match GapPipeline::new(GapConfig::default()).solve(&g) {
        Ok(sol) => assert_eq!(sol.assignment.len(), 3),
        Err(e) => assert!(!e.message.is_empty()),
    }
}

#[test]
fn every_site_and_action_yields_certified_plan_or_typed_error() {
    let _guard = exclusive();
    let inst = instance();
    for &site in epplan::fault::SITES {
        for action in ACTIONS {
            for hit in [1u64, 2] {
                let label = format!("{site}@{hit}={action}");

                // Substrate entry points: totality only.
                {
                    let _armed = arm(plan_for(site, hit, action));
                    run_lp();
                }
                {
                    let _armed = arm(plan_for(site, hit, action));
                    run_flow();
                }
                {
                    let _armed = arm(plan_for(site, hit, action));
                    run_gap();
                }

                // GEPC entry points: totality + certification.
                {
                    let _armed = arm(plan_for(site, hit, action));
                    let solver = GapBasedSolver::default().with_certify(true);
                    let result = solver.solve_robust(&inst, SolveBudget::UNLIMITED);
                    if let Ok(sol) = &result {
                        let cert = sol
                            .report
                            .certificate
                            .as_ref()
                            .unwrap_or_else(|| panic!("{label}: certified solve lost its certificate"));
                        assert!(cert.hard_ok(), "{label}: success carries a rejecting certificate");
                    }
                    assert_certified_or_typed(&format!("gap_based {label}"), &inst, result);
                }
                {
                    let _armed = arm(plan_for(site, hit, action));
                    let result = GreedySolver::seeded(7).try_solve(&inst, SolveBudget::UNLIMITED);
                    assert_certified_or_typed(&format!("greedy {label}"), &inst, result);
                }
                {
                    let _armed = arm(plan_for(site, hit, action));
                    let result = ExactSolver::default().try_solve(&inst, SolveBudget::UNLIMITED);
                    assert_certified_or_typed(&format!("exact {label}"), &inst, result);
                }

                // IEP entry point (carries `core.iep.apply`).
                {
                    let _armed = arm(plan_for(site, hit, action));
                    let plan = GreedySolver::seeded(7).solve(&inst).plan;
                    let op = AtomicOp::BudgetChange {
                        user: UserId(0),
                        new_budget: 10.0,
                    };
                    match IncrementalPlanner.try_apply(&inst, &plan, &op) {
                        Ok(out) => {
                            let cert = certify(&out.instance, &out.plan);
                            assert!(cert.hard_ok(), "iep {label}: uncertified outcome: {cert}");
                        }
                        Err(e) => {
                            assert!(!e.message.is_empty());
                            if let Some(out) = e.partial {
                                assert!(
                                    certify(&out.instance, &out.plan).hard_ok(),
                                    "iep {label}: uncertified degraded outcome"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn unarmed_runs_are_unaffected_by_the_fault_layer() {
    let _guard = exclusive();
    epplan::fault::clear();
    let inst = instance();
    let sol = GapBasedSolver::default()
        .with_certify(true)
        .solve_robust(&inst, SolveBudget::UNLIMITED)
        .unwrap_or_else(|e| panic!("clean certified solve failed: {}", e.message));
    let cert = sol.report.certificate.clone().expect("certificate requested");
    assert!(cert.hard_ok());
    assert!(!sol.report.degraded());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized corner of the matrix: any (site, action, hit) triple
    /// against the certified gap_based chain keeps the contract.
    #[test]
    fn random_fault_keeps_certified_or_typed(
        site_idx in 0usize..10,
        action_idx in 0usize..4,
        hit in 1u64..4,
    ) {
        let _guard = exclusive();
        let inst = instance();
        let site = epplan::fault::SITES[site_idx];
        let action = ACTIONS[action_idx];
        let _armed = arm(plan_for(site, hit, action));
        let result = GapBasedSolver::default()
            .with_certify(true)
            .solve_robust(&inst, SolveBudget::UNLIMITED);
        match result {
            Ok(sol) => {
                let cert = sol.report.certificate.clone()
                    .unwrap_or_else(|| panic!("certificate requested but missing"));
                prop_assert!(cert.hard_ok());
            }
            Err(e) => {
                prop_assert!(!e.message.is_empty());
                if let Some(partial) = e.partial {
                    prop_assert!(certify(&inst, &partial.plan).hard_ok());
                }
            }
        }
    }
}
