//! Cross-crate integration tests for the GEPC solvers: generated
//! instances flow through datagen → core solvers → validation, and the
//! paper's structural claims are checked end to end.

use epplan::core::analysis::InstanceAnalysis;
use epplan::datagen::{generate, City, GeneratorConfig};
use epplan::prelude::*;

fn small_cfg(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        n_users: 60,
        n_events: 12,
        seed,
        mean_lower: 3,
        mean_upper: 10,
        ..Default::default()
    }
}

#[test]
fn both_solvers_produce_hard_feasible_plans() {
    for seed in 0..5 {
        let inst = generate(&small_cfg(seed));
        for solver in [
            Box::new(GreedySolver::seeded(seed)) as Box<dyn GepcSolver>,
            Box::new(GapBasedSolver::default()),
        ] {
            let sol = solver.solve(&inst);
            let v = sol.plan.validate(&inst);
            assert!(
                v.hard_ok(),
                "{} seed {seed}: {:?}",
                solver.name(),
                v.violations
            );
        }
    }
}

#[test]
fn solution_shortfall_matches_validation() {
    let inst = generate(&small_cfg(3));
    let sol = GreedySolver::seeded(0).solve(&inst);
    let v = sol.plan.validate(&inst);
    assert_eq!(sol.shortfall, v.shortfall_events());
}

#[test]
fn gap_utility_competitive_with_greedy() {
    // Table VI shape: GAP-based utility is at least in the greedy's
    // ballpark (the paper finds it slightly larger; both are
    // approximations so we allow 15% slack rather than strict order).
    let mut gap_total = 0.0;
    let mut greedy_total = 0.0;
    for seed in 10..15 {
        let inst = generate(&small_cfg(seed));
        gap_total += GapBasedSolver::default().solve(&inst).utility;
        greedy_total += GreedySolver::seeded(1).solve(&inst).utility;
    }
    assert!(
        gap_total >= 0.85 * greedy_total,
        "gap {gap_total} vs greedy {greedy_total}"
    );
}

#[test]
fn approximation_bounds_hold_vs_exact() {
    // The paper's ratios: greedy ≥ OPT/(2·Uc_max), GAP ≥
    // OPT/(Uc_max−1) · (1−O(ε)). Verified on tiny instances where the
    // exact optimum is computable.
    let mut checked = 0;
    for seed in 0..30 {
        let inst = generate(&GeneratorConfig {
            n_users: 5,
            n_events: 4,
            seed: 3000 + seed,
            mean_lower: 1,
            mean_upper: 3,
            n_tags: 6,
            ..Default::default()
        });
        let Some(exact) = (ExactSolver {
            max_users: 6,
            max_events: 5,
        })
        .solve_optimal(&inst) else {
            continue;
        };
        if exact.utility <= 0.0 {
            continue;
        }
        let analysis = InstanceAnalysis::of(&inst);
        let greedy = GreedySolver::seeded(9).solve(&inst);
        if let Some(bound) = analysis.greedy_bound() {
            assert!(
                greedy.utility >= bound * exact.utility - 1e-9,
                "seed {seed}: greedy {} < bound {} × exact {}",
                greedy.utility,
                bound,
                exact.utility
            );
        }
        let gap = GapBasedSolver::default().solve(&inst);
        if let Some(bound) = analysis.gap_bound() {
            // Allow the (1−O(ε)) LP slack on top of the 1/(Uc_max−1).
            assert!(
                gap.utility >= 0.8 * bound * exact.utility - 1e-9,
                "seed {seed}: gap {} < bound {} × exact {}",
                gap.utility,
                bound,
                exact.utility
            );
        }
        checked += 1;
    }
    assert!(checked >= 5, "too few feasible tiny instances ({checked})");
}

#[test]
fn two_step_framework_never_loses_utility() {
    for seed in 0..5 {
        let inst = generate(&small_cfg(100 + seed));
        let xi_only = GreedySolver::xi_only(seed).solve(&inst);
        let two_step = GreedySolver::seeded(seed).solve(&inst);
        assert!(two_step.utility >= xi_only.utility - 1e-9);
        // Step 2 only adds assignments.
        assert!(
            two_step.plan.total_assignments() >= xi_only.plan.total_assignments()
        );
    }
}

#[test]
fn city_preset_roundtrip_through_solver() {
    // Beijing-sized end-to-end smoke test (113 × 16, Table IV).
    let inst = City::Beijing.instance();
    let sol = GreedySolver::seeded(2).solve(&inst);
    assert!(sol.plan.validate(&inst).hard_ok());
    assert!(sol.utility > 0.0);
}

#[test]
fn solvers_are_deterministic() {
    let inst = generate(&small_cfg(77));
    let a = GreedySolver::seeded(5).solve(&inst);
    let b = GreedySolver::seeded(5).solve(&inst);
    assert_eq!(a.plan, b.plan);
    let c = GapBasedSolver::default().solve(&inst);
    let d = GapBasedSolver::default().solve(&inst);
    assert_eq!(c.plan, d.plan);
}

#[test]
fn zero_utility_assignments_never_made() {
    for seed in 0..3 {
        let inst = generate(&small_cfg(200 + seed));
        for solver in [
            Box::new(GreedySolver::seeded(0)) as Box<dyn GepcSolver>,
            Box::new(GapBasedSolver::default()),
        ] {
            let sol = solver.solve(&inst);
            for u in inst.user_ids() {
                for &e in sol.plan.user_plan(u) {
                    assert!(
                        inst.utility(u, e) > 0.0,
                        "{} assigned zero-utility pair ({u}, {e})",
                        solver.name()
                    );
                }
            }
        }
    }
}
