//! Integration tests for the reporting layer: statistics, itineraries
//! and their consistency with the raw plan/instance data.

use epplan::core::plan::{all_itineraries, Itinerary, PlanStatistics};
use epplan::datagen::{generate, GeneratorConfig};
use epplan::prelude::*;

fn setup(seed: u64) -> (Instance, epplan::core::plan::Plan) {
    let inst = generate(&GeneratorConfig {
        n_users: 60,
        n_events: 12,
        seed,
        mean_lower: 3,
        mean_upper: 10,
        ..Default::default()
    });
    let plan = GreedySolver::seeded(seed).solve(&inst).plan;
    (inst, plan)
}

#[test]
fn statistics_agree_with_plan() {
    let (inst, plan) = setup(1);
    let s = PlanStatistics::of(&inst, &plan);
    assert_eq!(s.assignments, plan.total_assignments());
    assert!((s.total_utility - plan.total_utility(&inst)).abs() < 1e-9);
    let active = inst
        .user_ids()
        .filter(|&u| !plan.user_plan(u).is_empty())
        .count();
    assert_eq!(s.active_users, active);
    // Histogram mass equals the user count.
    let hist = PlanStatistics::plan_length_histogram(&inst, &plan);
    assert_eq!(hist.iter().sum::<usize>(), inst.n_users());
    // Weighted histogram equals total assignments.
    let weighted: usize = hist.iter().enumerate().map(|(k, &c)| k * c).sum();
    assert_eq!(weighted, plan.total_assignments());
}

#[test]
fn itineraries_cover_every_active_user() {
    let (inst, plan) = setup(2);
    let its = all_itineraries(&inst, &plan);
    let active = inst
        .user_ids()
        .filter(|&u| !plan.user_plan(u).is_empty())
        .count();
    assert_eq!(its.len(), active);
    for it in &its {
        assert!(it.is_consistent(), "{} has out-of-order stops", it.user);
        assert!(it.within_budget(), "{} over budget", it.user);
        // Total cost must equal the instance's travel-cost metric.
        let expected = plan.travel_cost(&inst, it.user);
        assert!((it.total_cost - expected).abs() < 1e-9);
        // Stops must be exactly the user's plan.
        assert_eq!(it.stops.len(), plan.user_plan(it.user).len());
    }
}

#[test]
fn itinerary_legs_sum_to_total() {
    let (inst, plan) = setup(3);
    for it in all_itineraries(&inst, &plan) {
        let legs: f64 = it.stops.iter().map(|s| s.leg_distance + s.fee).sum();
        assert!((legs + it.return_distance - it.total_cost).abs() < 1e-9);
    }
}

#[test]
fn statistics_track_incremental_changes() {
    use epplan::core::incremental::{AtomicOp, IncrementalPlanner};
    let (inst, plan) = setup(4);
    let before = PlanStatistics::of(&inst, &plan);
    let busiest = inst
        .event_ids()
        .max_by_key(|&e| plan.attendance(e))
        .unwrap();
    let out = IncrementalPlanner.apply(
        &inst,
        &plan,
        &AtomicOp::EtaDecrease {
            event: busiest,
            new_upper: 1,
        },
    );
    let after = PlanStatistics::of(&out.instance, &out.plan);
    // The event kept exactly one attendee.
    assert_eq!(out.plan.attendance(busiest), 1);
    // Assignment delta is consistent with dif minus refills.
    assert!(after.assignments + out.dif >= before.assignments);
}

#[test]
fn itinerary_of_idle_user_is_empty() {
    let (inst, _) = setup(5);
    let empty = epplan::core::plan::Plan::for_instance(&inst);
    let it = Itinerary::of(&inst, &empty, UserId(0));
    assert!(it.stops.is_empty());
    assert_eq!(it.total_cost, 0.0);
    assert!(it.within_budget());
}
