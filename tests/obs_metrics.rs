//! Tier-1 observability test: a GAP-based solve on a real generated
//! instance must leave non-trivial tracks in the global metrics
//! registry — LP pivots, MW epochs, and rounding slot-graph sizes.
//!
//! Metrics are process-global, so both solver configurations run
//! inside one test function with a `reset_metrics` between them.

use epplan::datagen::{generate, GeneratorConfig};
use epplan::gap::{FractionalMethod, GapConfig};
use epplan::obs;
use epplan::prelude::*;

#[test]
fn gap_solve_emits_stage_metrics() {
    let instance = generate(&GeneratorConfig {
        n_users: 60,
        n_events: 8,
        seed: 3,
        ..Default::default()
    });
    obs::enable_metrics();

    // Simplex path: the LP relaxation must pivot and the ST rounding
    // must build a non-empty slot graph.
    obs::reset_metrics();
    let solver = GapBasedSolver::with_gap_config(GapConfig {
        method: FractionalMethod::Simplex,
        ..Default::default()
    });
    let solution = solver.solve(&instance);
    assert!(solution.plan.validate(&instance).hard_ok());
    assert!(
        obs::counter_value("lp.iterations") > 0,
        "simplex solve recorded no LP pivots"
    );
    assert!(
        obs::counter_value("rounding.slots") > 0,
        "rounding recorded no slots"
    );
    let stages: Vec<&str> = solution.report.stages.iter().map(|s| s.name.as_str()).collect();
    assert!(
        stages.contains(&"lp.simplex") && stages.contains(&"gap.rounding"),
        "SolveReport stage summary missing expected stages: {stages:?}"
    );

    // Multiplicative-weights path: epochs and oracle calls instead of
    // pivots.
    obs::reset_metrics();
    let solver = GapBasedSolver::with_gap_config(GapConfig {
        method: FractionalMethod::MultiplicativeWeights,
        ..Default::default()
    });
    let solution = solver.solve(&instance);
    assert!(solution.plan.validate(&instance).hard_ok());
    assert!(
        obs::counter_value("packing.epochs") > 0,
        "MW solve recorded no packing epochs"
    );
    assert!(
        obs::counter_value("rounding.slots") > 0,
        "rounding recorded no slots on the MW path"
    );

    obs::disable_metrics();
}
