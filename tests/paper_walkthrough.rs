//! End-to-end reproduction of the paper's worked examples (Examples
//! 1–8) against the reconstructed Example-1 instance.

use epplan::core::incremental::{AtomicOp, IncrementalPlanner};
use epplan::core::model::TimeInterval;
use epplan::core::plan::Plan;
use epplan::datagen::paper_example;
use epplan::prelude::*;

/// The colored plan of Table I (Example 2).
fn example_2_plan(inst: &Instance) -> Plan {
    let mut plan = Plan::for_instance(inst);
    let pairs = [
        (0u32, 0u32),
        (0, 1),
        (1, 1),
        (1, 2),
        (2, 1),
        (2, 2),
        (3, 2),
        (3, 3),
        (4, 3),
    ];
    for (u, e) in pairs {
        plan.add(UserId(u), EventId(e));
    }
    plan
}

#[test]
fn example_2_plan_feasible_with_utility_6_3() {
    let inst = paper_example();
    let plan = example_2_plan(&inst);
    let v = plan.validate(&inst);
    assert!(v.is_feasible(), "{:?}", v.violations);
    assert!((plan.total_utility(&inst) - 6.3).abs() < 1e-9);
}

#[test]
fn example_2_plan_is_optimal() {
    // The exact solver confirms 6.3 is the optimum for Example 1.
    let inst = paper_example();
    let exact = ExactSolver::default().solve_optimal(&inst).unwrap();
    assert!((exact.utility - 6.3).abs() < 1e-9);
}

#[test]
fn example_3_eta_decrease_to_1() {
    // "assume that η4 is decreased from 5 to 1. The solution … removes
    // e4 from u4's plan (μ(u5,e4) > μ(u4,e4)) … e2 is then added to
    // u4's plan … negative impact 1."
    let inst = paper_example();
    let plan = example_2_plan(&inst);
    let out = IncrementalPlanner.apply(
        &inst,
        &plan,
        &AtomicOp::EtaDecrease {
            event: EventId(3),
            new_upper: 1,
        },
    );
    assert_eq!(out.dif, 1);
    assert!(!out.plan.contains(UserId(3), EventId(3)), "u4 loses e4");
    assert!(out.plan.contains(UserId(4), EventId(3)), "u5 keeps e4");
    assert!(out.plan.contains(UserId(3), EventId(1)), "u4 gains e2");
    assert!(out.plan.validate(&out.instance).hard_ok());
}

#[test]
fn example_6_eta_decrease_to_4_is_noop() {
    let inst = paper_example();
    let plan = example_2_plan(&inst);
    let out = IncrementalPlanner.apply(
        &inst,
        &plan,
        &AtomicOp::EtaDecrease {
            event: EventId(3),
            new_upper: 4,
        },
    );
    assert_eq!(out.dif, 0);
    assert_eq!(out.plan, plan);
}

#[test]
fn example_7_xi_increase_noop_when_satisfied() {
    // "If ξ4 is increased from 1 to 2, no update is needed" (e4 has 2
    // attendees in the Example-2 plan).
    let inst = paper_example();
    let plan = example_2_plan(&inst);
    let out = IncrementalPlanner.apply(
        &inst,
        &plan,
        &AtomicOp::XiIncrease {
            event: EventId(3),
            new_lower: 2,
        },
    );
    assert_eq!(out.dif, 0);
    assert_eq!(out.plan, plan);
}

#[test]
fn example_7_xi_increase_transfers_best_delta() {
    // The paper's Example 7 narrative: raising e4's lower bound to 3
    // pulls one user from an event with spare attendees, choosing the
    // largest Δ = μ(u, e4) − μ(u, e_src); the move must keep all
    // constraints and achieve dif = 1.
    let inst = paper_example();
    let plan = example_2_plan(&inst);
    let out = IncrementalPlanner.apply(
        &inst,
        &plan,
        &AtomicOp::XiIncrease {
            event: EventId(3),
            new_lower: 3,
        },
    );
    assert!(out.plan.attendance(EventId(3)) >= 3, "lower bound met");
    assert!(out.plan.validate(&out.instance).hard_ok());
    assert_eq!(out.dif, 1, "exactly one user loses one event");
}

#[test]
fn example_8_time_change_removes_conflicted_and_refills() {
    // "If e1 is changed to 3:30–5:30 p.m., e1 conflicts with e2 …
    // remove e1 from u1's plan … we find that u4 can attend e1."
    let inst = paper_example();
    let plan = example_2_plan(&inst);
    let pm = |h: u32, m: u32| (12 + h) * 60 + m;
    let out = IncrementalPlanner.apply(
        &inst,
        &plan,
        &AtomicOp::TimeChange {
            event: EventId(0),
            new_time: TimeInterval::new(pm(3, 30), pm(5, 30)),
        },
    );
    assert!(
        !out.plan.contains(UserId(0), EventId(0)),
        "u1 loses e1 (conflicts its e2)"
    );
    // e1's lower bound (1) must be restored by another user; the paper
    // finds u4 — but u4's plan has e3 (1:30–3:00), which does NOT
    // conflict with the new slot, and e4 (6:00–8:00) which doesn't
    // either, so u4 is indeed eligible.
    assert!(out.plan.attendance(EventId(0)) >= 1, "ξ1 restored");
    assert!(out.plan.validate(&out.instance).hard_ok());
}

#[test]
fn greedy_on_paper_example_matches_table_iii_shape() {
    // With some user order, greedy's ξ-GEPC step ends with e3 chosen by
    // 3 users, e2 by 2, e1 and e4 by 1 (all lower bounds exactly met).
    let inst = paper_example();
    let sol = GreedySolver::xi_only(0).solve(&inst);
    for e in inst.event_ids() {
        assert!(
            sol.plan.attendance(e) <= inst.event(e).lower,
            "ξ-GEPC never exceeds ξ in step 1"
        );
    }
    assert!(sol.plan.validate(&inst).hard_ok());
}

#[test]
fn all_solvers_feasible_on_paper_example() {
    let inst = paper_example();
    for solver in [
        Box::new(GreedySolver::seeded(0)) as Box<dyn GepcSolver>,
        Box::new(GapBasedSolver::default()),
        Box::new(ExactSolver::default()),
    ] {
        let sol = solver.solve(&inst);
        assert!(
            sol.plan.validate(&inst).hard_ok(),
            "{} infeasible",
            solver.name()
        );
        assert!(sol.utility <= 6.3 + 1e-9, "{} beats the optimum?!", solver.name());
    }
}
