//! Overload-resilience contract of `epplan serve`: under a bursty
//! stream with admission shedding armed, the set of shed ops is a pure
//! function of the recorded stream — identical across thread counts,
//! reproduced bit-for-bit by `--restore` after a SIGKILL or an
//! injected abort, with the WAL itself byte-identical. A poison op
//! that keeps killing the daemon mid-execution is quarantined to the
//! dead-letter log after `--quarantine-after` attempts and exported by
//! `--dump-dead-letter`.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_epplan"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("epplan-overload-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Generates a small instance plus a *bursty* op stream (`--burst
/// 16,4`: runs of 16 dense ids, then a jump of 4) into `dir`. The id
/// gaps are what make admission staleness bite: re-solve work charges
/// push the work clock past the dense tail of each burst.
fn make_bursty_fixture(dir: &Path, n_ops: usize) -> (PathBuf, PathBuf) {
    let inst = dir.join("inst.json");
    let ops = dir.join("ops.jsonl");
    let out = bin()
        .args(["generate", "--users", "60", "--events", "8", "--seed", "11"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = bin()
        .args(["opstream", "--instance", inst.to_str().unwrap()])
        .args(["--count", &n_ops.to_string(), "--seed", "23"])
        .args(["--burst", "16,4"])
        .args(["--out", ops.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    (inst, ops)
}

/// Serve flags for the overload matrix: a low drift threshold so
/// re-solves fire (each charges extra work-clock ops), a tight ops
/// deadline so the bursts actually shed, and quarantine armed. All
/// knobs are ops-denominated — no wall-clock anywhere — so every
/// decision is replayable.
fn overload_args(inst: &Path, state: &Path, out_plan: &Path) -> Vec<String> {
    [
        "serve",
        "--instance",
        inst.to_str().unwrap(),
        "--state-dir",
        state.to_str().unwrap(),
        "--snapshot-every",
        "7",
        "--drift-threshold",
        "5",
        "--max-retries",
        "2",
        "--op-deadline-ops",
        "3",
        "--quarantine-after",
        "3",
        "--out",
        out_plan.to_str().unwrap(),
        "--quiet",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// The summary fields this test asserts on (extra keys are ignored
/// by the typed deserialize).
#[derive(Debug, serde::Deserialize)]
struct Summary {
    certified: bool,
    shed: u64,
    quarantined: u64,
    brownout_steps: u64,
}

/// Pulls the final summary JSON line out of a serve run's stdout.
fn summary_line(stdout: &[u8]) -> Summary {
    let text = String::from_utf8_lossy(stdout);
    let line = text
        .lines()
        .find(|l| l.starts_with('{') && l.contains("\"certified\""))
        .unwrap_or_else(|| panic!("no summary line in: {text}"));
    serde_json::from_str(line).unwrap_or_else(|e| panic!("bad summary {line}: {e}"))
}

/// Runs the full stream uninterrupted; returns plan bytes, WAL bytes
/// and the summary. The run must shed (the fixture is tuned so it
/// does) and still certify.
fn reference_run(
    dir: &Path,
    inst: &Path,
    ops: &Path,
    threads: &str,
) -> (Vec<u8>, Vec<u8>, Summary) {
    let state = dir.join(format!("state-ref-{threads}"));
    let plan = dir.join(format!("plan-ref-{threads}.json"));
    let out = bin()
        .args(overload_args(inst, &state, &plan))
        .args(["--ops", ops.to_str().unwrap()])
        .env("EPPLAN_THREADS", threads)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let summary = summary_line(&out.stdout);
    assert!(summary.certified, "overloaded run must certify: {summary:?}");
    assert!(summary.shed > 0, "fixture must actually shed: {summary:?}");
    let wal = std::fs::read(state.join("wal.log")).unwrap();
    (std::fs::read(&plan).unwrap(), wal, summary)
}

/// The full thread-count matrix: sheds, plan bytes and the WAL itself
/// (ops, outcomes — including shed records — and snapshots with the
/// embedded controller state) are invariant under `EPPLAN_THREADS`,
/// and both crash legs (real SIGKILL, injected abort) restore to the
/// reference bit-for-bit.
#[test]
fn bursty_shedding_is_thread_invariant_and_crash_safe() {
    let dir = tmp_dir("matrix");
    let (inst, ops) = make_bursty_fixture(&dir, 120);

    let (plan_1, wal_1, sum_1) = reference_run(&dir, &inst, &ops, "1");
    let (plan_4, wal_4, sum_4) = reference_run(&dir, &inst, &ops, "4");
    assert_eq!(plan_1, plan_4, "plan bytes must not depend on thread count");
    assert_eq!(wal_1, wal_4, "WAL bytes must not depend on thread count");
    assert_eq!(
        std::fs::read(dir.join("state-ref-1/snapshot.bin")).unwrap(),
        std::fs::read(dir.join("state-ref-4/snapshot.bin")).unwrap(),
        "snapshots (plan + controller state) must not depend on thread count"
    );
    assert_eq!(
        sum_1.shed, sum_4.shed,
        "shed counts must be identical across thread counts"
    );

    // SIGKILL leg: ack-synchronized kill after 30 ops, then restore
    // and re-feed the whole stream. Shed decisions in the replayed
    // prefix come from the WAL, not from re-deciding.
    let op_lines: Vec<String> = std::fs::read_to_string(&ops)
        .unwrap()
        .lines()
        .map(String::from)
        .collect();
    let state = dir.join("state-kill");
    let plan = dir.join("plan-kill.json");
    let mut args = overload_args(&inst, &state, &plan);
    args.retain(|a| a != "--quiet"); // acks are the kill synchronization
    let mut child = bin()
        .args(&args)
        .env("EPPLAN_THREADS", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    let mut acks = BufReader::new(child.stdout.take().unwrap()).lines();
    for line in &op_lines[..30] {
        writeln!(stdin, "{line}").unwrap();
        stdin.flush().unwrap();
        let ack = acks.next().unwrap().unwrap();
        assert!(ack.contains("\"id\":"), "not an ack line: {ack}");
    }
    child.kill().unwrap();
    child.wait().unwrap();
    let out = bin()
        .args(overload_args(&inst, &state, &plan))
        .arg("--restore")
        .args(["--ops", ops.to_str().unwrap()])
        .env("EPPLAN_THREADS", "1")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "restore after SIGKILL failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(summary_line(&out.stdout).certified);
    assert_eq!(
        std::fs::read(&plan).unwrap(),
        plan_1,
        "plan restored after SIGKILL must match the uninterrupted run"
    );

    // Injected-abort leg at 4 threads: deterministic SIGABRT after 50
    // ops (past the first shed at op id 48), then restore.
    let state = dir.join("state-abort");
    let plan = dir.join("plan-abort.json");
    let out = bin()
        .args(overload_args(&inst, &state, &plan))
        .args(["--ops", ops.to_str().unwrap()])
        .args(["--crash-after-ops", "50"])
        .env("EPPLAN_THREADS", "4")
        .output()
        .unwrap();
    assert!(!out.status.success(), "--crash-after-ops must abort the process");
    let out = bin()
        .args(overload_args(&inst, &state, &plan))
        .arg("--restore")
        .args(["--ops", ops.to_str().unwrap()])
        .env("EPPLAN_THREADS", "4")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "restore after abort failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(summary_line(&out.stdout).certified);
    assert_eq!(
        std::fs::read(&plan).unwrap(),
        plan_4,
        "plan restored after the injected abort must match the uninterrupted run"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

/// A poison op — one that aborts the daemon mid-execution on every
/// attempt — must be dead-lettered after `--quarantine-after` tries
/// and skipped, with sheds before and after it in the same WAL. Op id
/// 81 opens the fifth burst: never shed itself, but sheds land both
/// before (48, 72…) and after (105…) it in this fixture.
#[test]
fn poison_op_is_quarantined_and_dumped() {
    let dir = tmp_dir("poison");
    let (inst, ops) = make_bursty_fixture(&dir, 120);
    let state = dir.join("state");
    let plan = dir.join("plan.json");

    // First encounter plus two restore retries all die inside op 81
    // (`--crash-in-op` aborts after the op record is durable, i.e. the
    // crash window of a mid-execution death).
    let out = bin()
        .args(overload_args(&inst, &state, &plan))
        .args(["--ops", ops.to_str().unwrap(), "--crash-in-op", "81"])
        .env("EPPLAN_THREADS", "1")
        .output()
        .unwrap();
    assert!(!out.status.success(), "--crash-in-op must abort the process");
    for attempt in 2..=3 {
        let out = bin()
            .args(overload_args(&inst, &state, &plan))
            .args(["--restore", "--ops", ops.to_str().unwrap()])
            .args(["--crash-in-op", "81"])
            .env("EPPLAN_THREADS", "1")
            .output()
            .unwrap();
        assert!(
            !out.status.success(),
            "restore attempt {attempt} should re-crash inside op 81"
        );
    }

    // Attempt 3 is durably recorded; the next restore sees the
    // attempt count at the threshold, quarantines op 81 without
    // executing it, and finishes the stream (the fault flag is still
    // armed — a quarantined op must never be re-entered).
    let out = bin()
        .args(overload_args(&inst, &state, &plan))
        .args(["--restore", "--ops", ops.to_str().unwrap()])
        .args(["--crash-in-op", "81"])
        .env("EPPLAN_THREADS", "1")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "restore past the quarantine threshold failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = summary_line(&out.stdout);
    assert_eq!(summary.quarantined, 1, "{summary:?}");
    assert!(summary.certified, "{summary:?}");
    assert!(summary.shed > 0, "{summary:?}");

    let out = bin()
        .args(["serve", "--state-dir", state.to_str().unwrap(), "--dump-dead-letter"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let dump = String::from_utf8_lossy(&out.stdout);
    #[derive(serde::Deserialize)]
    struct DeadLetterLine {
        id: u64,
        attempts: u32,
    }
    let rec: DeadLetterLine =
        serde_json::from_str(dump.lines().next().expect("one dead-letter line"))
            .unwrap_or_else(|e| panic!("bad dead-letter line: {e}\n{dump}"));
    assert_eq!(rec.id, 81, "{dump}");
    assert_eq!(rec.attempts, 3, "{dump}");
    assert_eq!(dump.lines().count(), 1, "exactly one quarantined op: {dump}");

    // A further restore replays the quarantine from the WAL — the op
    // stays dead, the dead-letter log is not double-appended.
    let out = bin()
        .args(overload_args(&inst, &state, &plan))
        .args(["--restore", "--ops", ops.to_str().unwrap()])
        .env("EPPLAN_THREADS", "1")
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(summary_line(&out.stdout).certified);
    let out = bin()
        .args(["serve", "--state-dir", state.to_str().unwrap(), "--dump-dead-letter"])
        .output()
        .unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout).lines().count(), 1);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Flag-grammar edges: a malformed `--burst` spec is a typed
/// `BadInput` (exit 5, not a panic or a silent default), `--brownout`
/// without an SLO is a usage error, and dumping the dead-letter log of
/// a fresh state directory prints nothing and exits 0.
#[test]
fn overload_flag_validation() {
    let dir = tmp_dir("flags");
    let (inst, _ops) = make_bursty_fixture(&dir, 1);

    for spec in ["16", "a,b", "0,4"] {
        let out = bin()
            .args(["opstream", "--instance", inst.to_str().unwrap()])
            .args(["--count", "4", "--burst", spec])
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(5),
            "--burst {spec} must exit 5: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("burst spec"),
            "error should name the burst spec"
        );
    }

    let out = bin()
        .args(["serve", "--instance", inst.to_str().unwrap()])
        .args(["--brownout", "2,4"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "--brownout without --slo-p99-us must be a usage error: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let fresh = dir.join("fresh-state");
    std::fs::create_dir_all(&fresh).unwrap();
    let out = bin()
        .args(["serve", "--state-dir", fresh.to_str().unwrap(), "--dump-dead-letter"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(out.stdout.is_empty(), "fresh state dir has no dead letters");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The brownout ladder descends under a burning SLO (p99 target of 0μs
/// burns on every op) and the run still certifies; controller state
/// replays across a crash/restore to the same WAL bytes.
#[test]
fn brownout_descends_and_replays() {
    let dir = tmp_dir("brownout");
    let (inst, ops) = make_bursty_fixture(&dir, 60);
    let extra = ["--slo-p99-us", "0", "--brownout", "2,100"];

    let state = dir.join("state-ref");
    let plan = dir.join("plan-ref.json");
    let out = bin()
        .args(overload_args(&inst, &state, &plan))
        .args(extra)
        .args(["--ops", ops.to_str().unwrap()])
        .env("EPPLAN_THREADS", "1")
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let summary = summary_line(&out.stdout);
    assert!(summary.certified, "{summary:?}");
    assert_eq!(
        summary.brownout_steps, 3,
        "p99 target 0 must walk the full ladder: {summary:?}"
    );
    let ref_plan = std::fs::read(&plan).unwrap();

    let state = dir.join("state-crash");
    let plan = dir.join("plan-crash.json");
    let out = bin()
        .args(overload_args(&inst, &state, &plan))
        .args(extra)
        .args(["--ops", ops.to_str().unwrap(), "--crash-after-ops", "20"])
        .env("EPPLAN_THREADS", "1")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = bin()
        .args(overload_args(&inst, &state, &plan))
        .args(extra)
        .args(["--restore", "--ops", ops.to_str().unwrap()])
        .env("EPPLAN_THREADS", "1")
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        std::fs::read(&plan).unwrap(),
        ref_plan,
        "plan after a mid-brownout crash/restore must match the uninterrupted run"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
