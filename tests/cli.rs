//! End-to-end tests of the `epplan` CLI binary: generate → solve →
//! validate → apply, all through real process invocations and JSON
//! files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_epplan"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("epplan-cli-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_solve_validate_roundtrip() {
    let dir = tmp_dir("roundtrip");
    let inst = dir.join("inst.json");
    let plan = dir.join("plan.json");

    let out = bin()
        .args(["generate", "--users", "40", "--events", "6", "--seed", "9"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(inst.exists());

    let out = bin()
        .args(["solve", "--instance", inst.to_str().unwrap()])
        .args(["--solver", "greedy", "--out", plan.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hard-feasible  : yes"), "{stdout}");

    let out = bin()
        .args(["validate", "--instance", inst.to_str().unwrap()])
        .args(["--plan", plan.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
}

#[test]
fn apply_op_stream() {
    let dir = tmp_dir("apply");
    let inst = dir.join("inst.json");
    let plan = dir.join("plan.json");
    let ops = dir.join("ops.json");
    let plan2 = dir.join("plan2.json");

    assert!(bin()
        .args(["generate", "--users", "30", "--events", "5", "--seed", "4"])
        .args(["--out", inst.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["solve", "--instance", inst.to_str().unwrap()])
        .args(["--out", plan.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    std::fs::write(
        &ops,
        r#"[{"op":"eta_decrease","event":1,"new_upper":1},
            {"op":"xi_decrease","event":0,"new_lower":0},
            {"op":"fee_change","event":2,"new_fee":1.5}]"#,
    )
    .unwrap();
    let out = bin()
        .args(["apply", "--instance", inst.to_str().unwrap()])
        .args(["--plan", plan.to_str().unwrap()])
        .args(["--ops", ops.to_str().unwrap()])
        .args(["--out-plan", plan2.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("applying 3 atomic operation(s)"), "{stdout}");
    assert!(plan2.exists());
}

#[test]
fn city_preset_generation() {
    let dir = tmp_dir("city");
    let inst = dir.join("beijing.json");
    let out = bin()
        .args(["generate", "--city", "beijing"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("113 users × 16 events"), "{stdout}");
}

#[test]
fn example_subcommand() {
    let out = bin().arg("example").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("utility        : 6.300"), "{stdout}");
}

/// Extracts the machine-readable JSON error object from the last
/// stderr line that looks like one, returning `(class, message_line)`.
fn parse_error_object(stderr: &[u8]) -> (String, String) {
    let text = String::from_utf8_lossy(stderr);
    let line = text
        .lines()
        .rev()
        .find(|l| l.starts_with('{') && l.contains("\"class\""))
        .unwrap_or_else(|| panic!("no JSON error line in stderr: {text}"));
    let start = line
        .find("\"class\":\"")
        .map(|i| i + "\"class\":\"".len())
        .unwrap_or_else(|| panic!("no class field: {line}"));
    let len = line[start..].find('"').expect("closing quote");
    (line[start..start + len].to_string(), line.to_string())
}

#[test]
fn unknown_subcommand_fails() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn usage_errors_exit_2_with_json_object() {
    let out = bin().arg("solve").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let (class, line) = parse_error_object(&out.stderr);
    assert_eq!(class, "usage");
    assert!(line.contains("\"exit_code\":2"), "{line}");
    assert!(line.contains("--instance"), "{line}");
}

#[test]
fn missing_instance_file_exits_3() {
    let out = bin()
        .args(["solve", "--instance", "/nonexistent/epplan-void.json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let (class, _) = parse_error_object(&out.stderr);
    assert_eq!(class, "io");
}

#[test]
fn malformed_instance_json_exits_4() {
    let dir = tmp_dir("badinst");
    let inst = dir.join("inst.json");
    std::fs::write(&inst, "{definitely not json").unwrap();
    let out = bin()
        .args(["solve", "--instance", inst.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    let (class, _) = parse_error_object(&out.stderr);
    assert_eq!(class, "parse");
}

#[test]
fn strictly_invalid_instance_exits_5() {
    let dir = tmp_dir("invalidinst");
    let inst = dir.join("inst.json");
    // Parses fine, but the utility is far outside [0, 1] — the kind of
    // damage serde cannot catch.
    std::fs::write(
        &inst,
        r#"{"users":[{"location":{"x":0.0,"y":0.0},"budget":10.0}],
            "events":[{"location":{"x":1.0,"y":0.0},"lower":0,"upper":1,
                       "time":{"start":0,"end":60},"fee":0.0}],
            "utilities":{"n_users":1,"n_events":1,"values":[7.5]}}"#,
    )
    .unwrap();
    let out = bin()
        .args(["solve", "--instance", inst.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5));
    let (class, line) = parse_error_object(&out.stderr);
    assert_eq!(class, "invalid-instance");
    assert!(line.contains("outside [0, 1]"), "{line}");
}

#[test]
fn infeasible_plan_validation_exits_6() {
    let dir = tmp_dir("infeasible");
    let inst = dir.join("inst.json");
    let plan = dir.join("plan.json");
    // One user, one event the user cannot attend (zero utility), but a
    // plan that assigns it anyway.
    std::fs::write(
        &inst,
        r#"{"users":[{"location":{"x":0.0,"y":0.0},"budget":10.0}],
            "events":[{"location":{"x":1.0,"y":0.0},"lower":0,"upper":1,
                       "time":{"start":0,"end":60},"fee":0.0}],
            "utilities":{"n_users":1,"n_events":1,"values":[0.0]}}"#,
    )
    .unwrap();
    std::fs::write(&plan, r#"{"assignments":[[0]],"attendance":[1]}"#).unwrap();
    let out = bin()
        .args(["validate", "--instance", inst.to_str().unwrap()])
        .args(["--plan", plan.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(6), "{}", String::from_utf8_lossy(&out.stderr));
    let (class, _) = parse_error_object(&out.stderr);
    assert_eq!(class, "infeasible");
}

#[test]
fn exhausted_solve_budget_exits_7_with_fallback_plan() {
    let dir = tmp_dir("budget");
    let inst = dir.join("inst.json");
    let plan = dir.join("plan.json");
    assert!(bin()
        .args(["generate", "--users", "40", "--events", "6", "--seed", "2"])
        .args(["--out", inst.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["solve", "--instance", inst.to_str().unwrap()])
        .args(["--solver", "gap", "--time-limit-ms", "0"])
        .args(["--out", plan.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(7), "{}", String::from_utf8_lossy(&out.stderr));
    let (class, _) = parse_error_object(&out.stderr);
    assert_eq!(class, "budget-exhausted");
    // The greedy fallback plan was still produced and written.
    assert!(plan.exists());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hard-feasible  : yes"), "{stdout}");
}

#[test]
fn malformed_op_in_stream_is_typed_error() {
    let dir = tmp_dir("badop");
    let inst = dir.join("inst.json");
    let plan = dir.join("plan.json");
    let ops = dir.join("ops.json");
    assert!(bin()
        .args(["generate", "--users", "10", "--events", "3", "--seed", "5"])
        .args(["--out", inst.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["solve", "--instance", inst.to_str().unwrap()])
        .args(["--out", plan.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    // Parses fine but references event 99 — rejected by op validation,
    // not by a panic deep inside the model layer.
    std::fs::write(
        &ops,
        r#"[{"op":"eta_decrease","event":99,"new_upper":1}]"#,
    )
    .unwrap();
    let out = bin()
        .args(["apply", "--instance", inst.to_str().unwrap()])
        .args(["--plan", plan.to_str().unwrap()])
        .args(["--ops", ops.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5), "{}", String::from_utf8_lossy(&out.stderr));
    let (_, line) = parse_error_object(&out.stderr);
    assert!(line.contains("out of range"), "{line}");
}

#[test]
fn missing_required_flag_fails() {
    let out = bin().arg("solve").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--instance"), "{stderr}");
}

#[test]
fn unknown_flag_is_usage_error() {
    let out = bin()
        .args(["solve", "--instance", "x.json", "--solvr", "gap"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let (class, line) = parse_error_object(&out.stderr);
    assert_eq!(class, "usage");
    assert!(line.contains("unknown flag --solvr"), "{line}");
}

#[test]
fn trace_and_metrics_outputs() {
    let dir = tmp_dir("obs");
    let inst = dir.join("inst.json");
    let trace = dir.join("trace.jsonl");
    assert!(bin()
        .args(["generate", "--users", "60", "--events", "8", "--seed", "3"])
        .args(["--out", inst.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["solve", "--instance", inst.to_str().unwrap(), "--solver", "gap"])
        .args(["--trace", trace.to_str().unwrap()])
        .args(["--metrics", "--json-metrics"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Every trace line parses as a JSON object carrying the schema
    // keys (extra keys like `parent`/`iters` are ignored by the typed
    // deserialize).
    #[derive(serde::Deserialize)]
    struct TraceLine {
        ts: u64,
        id: u64,
        span: String,
        dur_us: u64,
    }
    let body = std::fs::read_to_string(&trace).unwrap();
    assert!(!body.trim().is_empty(), "trace file is empty");
    let mut saw_nested = false;
    for line in body.lines() {
        let ev: TraceLine = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("bad trace line {line}: {e}"));
        assert!(!ev.span.is_empty(), "empty span name: {line}");
        assert!(ev.id > 0, "span id must be positive: {line}");
        let _ = (ev.ts, ev.dur_us);
        saw_nested |= line.contains("\"parent\":");
    }
    assert!(saw_nested, "no nested span (parent id) in trace:\n{body}");

    // --metrics renders the human stage table on stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("stage"), "{stderr}");
    assert!(stderr.contains("lp.simplex"), "{stderr}");

    // --json-metrics puts a machine-readable snapshot on stdout.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let snap_line = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with('{') && l.contains("\"counters\""))
        .unwrap_or_else(|| panic!("no metrics JSON in stdout: {stdout}"));
    assert!(snap_line.contains("\"lp.iterations\":"), "{snap_line}");
    assert!(snap_line.contains("\"stages\":"), "{snap_line}");
}

#[test]
fn bad_ops_json_fails_cleanly() {
    let dir = tmp_dir("badops");
    let inst = dir.join("inst.json");
    let plan = dir.join("plan.json");
    let ops = dir.join("ops.json");
    assert!(bin()
        .args(["generate", "--users", "10", "--events", "3", "--seed", "1"])
        .args(["--out", inst.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["solve", "--instance", inst.to_str().unwrap()])
        .args(["--out", plan.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    std::fs::write(&ops, "{not valid json").unwrap();
    let out = bin()
        .args(["apply", "--instance", inst.to_str().unwrap()])
        .args(["--plan", plan.to_str().unwrap()])
        .args(["--ops", ops.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
}
