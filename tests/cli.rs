//! End-to-end tests of the `epplan` CLI binary: generate → solve →
//! validate → apply, all through real process invocations and JSON
//! files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_epplan"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("epplan-cli-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_solve_validate_roundtrip() {
    let dir = tmp_dir("roundtrip");
    let inst = dir.join("inst.json");
    let plan = dir.join("plan.json");

    let out = bin()
        .args(["generate", "--users", "40", "--events", "6", "--seed", "9"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(inst.exists());

    let out = bin()
        .args(["solve", "--instance", inst.to_str().unwrap()])
        .args(["--solver", "greedy", "--out", plan.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hard-feasible  : yes"), "{stdout}");

    let out = bin()
        .args(["validate", "--instance", inst.to_str().unwrap()])
        .args(["--plan", plan.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
}

#[test]
fn apply_op_stream() {
    let dir = tmp_dir("apply");
    let inst = dir.join("inst.json");
    let plan = dir.join("plan.json");
    let ops = dir.join("ops.json");
    let plan2 = dir.join("plan2.json");

    assert!(bin()
        .args(["generate", "--users", "30", "--events", "5", "--seed", "4"])
        .args(["--out", inst.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["solve", "--instance", inst.to_str().unwrap()])
        .args(["--out", plan.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    std::fs::write(
        &ops,
        r#"[{"op":"eta_decrease","event":1,"new_upper":1},
            {"op":"xi_decrease","event":0,"new_lower":0},
            {"op":"fee_change","event":2,"new_fee":1.5}]"#,
    )
    .unwrap();
    let out = bin()
        .args(["apply", "--instance", inst.to_str().unwrap()])
        .args(["--plan", plan.to_str().unwrap()])
        .args(["--ops", ops.to_str().unwrap()])
        .args(["--out-plan", plan2.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("applying 3 atomic operation(s)"), "{stdout}");
    assert!(plan2.exists());
}

#[test]
fn city_preset_generation() {
    let dir = tmp_dir("city");
    let inst = dir.join("beijing.json");
    let out = bin()
        .args(["generate", "--city", "beijing"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("113 users × 16 events"), "{stdout}");
}

#[test]
fn example_subcommand() {
    let out = bin().arg("example").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("utility        : 6.300"), "{stdout}");
}

#[test]
fn unknown_subcommand_fails() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn missing_required_flag_fails() {
    let out = bin().arg("solve").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--instance"), "{stderr}");
}

#[test]
fn bad_ops_json_fails_cleanly() {
    let dir = tmp_dir("badops");
    let inst = dir.join("inst.json");
    let plan = dir.join("plan.json");
    let ops = dir.join("ops.json");
    assert!(bin()
        .args(["generate", "--users", "10", "--events", "3", "--seed", "1"])
        .args(["--out", inst.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["solve", "--instance", inst.to_str().unwrap()])
        .args(["--out", plan.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    std::fs::write(&ops, "{not valid json").unwrap();
    let out = bin()
        .args(["apply", "--instance", inst.to_str().unwrap()])
        .args(["--plan", plan.to_str().unwrap()])
        .args(["--ops", ops.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
}
