//! Regression guards on the city presets: the harness numbers quoted
//! in EXPERIMENTS.md depend on these instances being stable across
//! refactors. Rather than brittle exact snapshots, we pin the
//! structural facts and loose utility bands that the experiment
//! write-up relies on.

use epplan::core::plan::PlanStatistics;
use epplan::datagen::{conflict_ratio, City};
use epplan::prelude::*;

#[test]
fn city_shapes_match_table_iv() {
    for city in City::ALL {
        let (u, e) = city.sizes();
        let inst = city.instance();
        assert_eq!(inst.n_users(), u, "{city}");
        assert_eq!(inst.n_events(), e, "{city}");
        let r = conflict_ratio(&inst);
        assert!(
            (r - 0.25).abs() <= 0.07,
            "{city}: conflict ratio {r} strays from 0.25"
        );
        let mean_lower: f64 =
            inst.events().iter().map(|ev| ev.lower as f64).sum::<f64>() / e as f64;
        assert!(
            (mean_lower - 10.0).abs() <= 4.0,
            "{city}: mean xi {mean_lower}"
        );
    }
}

#[test]
fn city_instances_are_stable_across_runs() {
    // The seeds are pinned, so two constructions must agree exactly —
    // this is what makes EXPERIMENTS.md numbers reproducible.
    for city in City::ALL {
        assert_eq!(city.instance(), city.instance(), "{city}");
    }
}

#[test]
fn beijing_utility_band() {
    // Under the vendored deterministic RNG backend the pinned Beijing
    // draw gives greedy ≈ 75.4 and GAP ≈ 69.3 (see the backend note in
    // EXPERIMENTS.md). Guard the band loosely so refactors that change
    // the numbers get noticed (and the doc updated) without pinning
    // exact floats.
    let inst = City::Beijing.instance();
    let greedy = GreedySolver::seeded(7).solve(&inst);
    assert!(
        (60.0..90.0).contains(&greedy.utility),
        "greedy utility {} left the documented band",
        greedy.utility
    );
    assert!(greedy.plan.validate(&inst).hard_ok());
    let gap = GapBasedSolver::default().solve(&inst);
    assert!(
        gap.utility >= greedy.utility * 0.85,
        "gap {} no longer competitive with greedy {}",
        gap.utility,
        greedy.utility
    );
}

#[test]
fn auckland_statistics_sane() {
    let inst = City::Auckland.instance();
    let plan = GreedySolver::seeded(7).solve(&inst).plan;
    let s = PlanStatistics::of(&inst, &plan);
    assert!(s.active_users > inst.n_users() / 2, "{s:?}");
    assert!(s.viable_events >= inst.n_events() * 8 / 10, "{s:?}");
    assert!(s.max_budget_used <= 1.0 + 1e-9, "{s:?}");
}
