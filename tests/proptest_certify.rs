//! Certification must reject corrupted plans and name the precise
//! constraint each corruption violates. Corruptions are injected the
//! way they would arrive in the wild:
//!
//! * **duplicate / out-of-range assignments** through serde (the JSON
//!   loader bypasses [`Plan::add`]'s dedup guard);
//! * **overfull events** (η overflow) through repeated `add`;
//! * **budget-busting** itineraries for a user with a tight budget;
//! * **ξ-violating events** — a *soft* shortfall: flagged, named, but
//!   the certificate still passes the hard check.

use epplan::core::certify::{certify, certify_incremental};
use epplan::core::model::{Event, Instance, TimeInterval, User, UtilityMatrix};
use epplan::core::plan::Plan;
use epplan::datagen::{generate, GeneratorConfig};
use epplan::prelude::*;
use epplan::solve::certify::constraint;
use proptest::prelude::*;

/// Deterministic instance with one of everything: overlapping events,
/// a far-away venue, a tight-budget user, a zero-utility pair, ξ > 0.
fn instance() -> Instance {
    let users = vec![
        User::new(Point::new(0.0, 0.0), 50.0),
        User::new(Point::new(1.0, 0.0), 50.0),
        User::new(Point::new(2.0, 0.0), 0.5), // tight budget
    ];
    let events = vec![
        Event::new(Point::new(0.0, 1.0), 1, 2, TimeInterval::new(0, 59)),
        Event::new(Point::new(0.0, 2.0), 0, 1, TimeInterval::new(30, 119)), // overlaps e0
        Event::new(Point::new(9.0, 9.0), 0, 3, TimeInterval::new(140, 200)), // far away
    ];
    let utilities = UtilityMatrix::from_rows(vec![
        vec![0.9, 0.4, 0.3],
        vec![0.7, 0.8, 0.2],
        vec![0.5, 0.0, 0.9], // zero utility for (u2, e1)
    ]).unwrap();
    Instance::new(users, events, utilities).unwrap()
}

/// Deserializes a handcrafted plan JSON — the only way to construct
/// the malformed states [`Plan`]'s own API refuses to build.
fn plan_from_json(json: &str) -> Plan {
    serde_json::from_str(json).unwrap_or_else(|e| panic!("plan JSON: {e}"))
}

#[test]
fn feasible_plan_certifies_clean() {
    let inst = instance();
    let mut plan = Plan::for_instance(&inst);
    plan.add(UserId(0), EventId(0));
    plan.add(UserId(1), EventId(1));
    let cert = certify(&inst, &plan);
    assert!(cert.hard_ok(), "{cert}");
    assert!(cert.soft_violations.is_empty());
    assert!((cert.utility - 1.7).abs() < 1e-12);
}

#[test]
fn duplicate_assignment_via_serde_is_named() {
    let inst = instance();
    // User 0 attends event 0 twice — impossible through Plan::add,
    // trivial through the JSON loader.
    let plan = plan_from_json(r#"{"assignments":[[0,0],[],[]],"attendance":[2,0,0]}"#);
    let cert = certify(&inst, &plan);
    assert!(!cert.hard_ok());
    assert!(
        cert.violated_constraints()
            .contains(&constraint::DUPLICATE_ASSIGNMENT),
        "got {:?}",
        cert.violated_constraints()
    );
}

#[test]
fn out_of_range_assignment_via_serde_is_named() {
    let inst = instance();
    let plan = plan_from_json(r#"{"assignments":[[7],[],[]],"attendance":[0,0,0]}"#);
    let cert = certify(&inst, &plan);
    assert!(!cert.hard_ok());
    assert!(cert
        .violated_constraints()
        .contains(&constraint::INVALID_ASSIGNMENT));
}

#[test]
fn overfull_event_is_named() {
    let inst = instance();
    let mut plan = Plan::for_instance(&inst);
    // η(e1) = 1; assign two users.
    plan.add(UserId(1), EventId(1));
    plan.add(UserId(0), EventId(1));
    let cert = certify(&inst, &plan);
    assert!(!cert.hard_ok());
    assert!(cert
        .violated_constraints()
        .contains(&constraint::ETA_UPPER_BOUND));
}

#[test]
fn budget_busting_user_is_named() {
    let inst = instance();
    let mut plan = Plan::for_instance(&inst);
    plan.add(UserId(0), EventId(0)); // keep ξ(e0) satisfied
    plan.add(UserId(2), EventId(2)); // budget 0.5, venue ~11.4 away
    let cert = certify(&inst, &plan);
    assert!(!cert.hard_ok());
    assert!(cert
        .violated_constraints()
        .contains(&constraint::TRAVEL_BUDGET));
}

#[test]
fn time_conflict_is_named() {
    let inst = instance();
    let mut plan = Plan::for_instance(&inst);
    plan.add(UserId(0), EventId(0));
    plan.add(UserId(0), EventId(1)); // windows overlap
    let cert = certify(&inst, &plan);
    assert!(!cert.hard_ok());
    assert!(cert
        .violated_constraints()
        .contains(&constraint::TIME_CONFLICT));
}

#[test]
fn zero_utility_assignment_is_named() {
    let inst = instance();
    let mut plan = Plan::for_instance(&inst);
    plan.add(UserId(0), EventId(0));
    plan.add(UserId(2), EventId(1)); // μ(u2, e1) = 0
    let cert = certify(&inst, &plan);
    assert!(!cert.hard_ok());
    assert!(cert
        .violated_constraints()
        .contains(&constraint::ZERO_UTILITY));
}

#[test]
fn xi_shortfall_is_soft_and_named() {
    let inst = instance();
    // ξ(e0) = 1 but nobody attends: flagged, named, still hard-ok.
    let plan = Plan::for_instance(&inst);
    let cert = certify(&inst, &plan);
    assert!(cert.hard_ok());
    assert_eq!(cert.soft_violations.len(), 1);
    assert_eq!(cert.soft_violations[0].constraint, constraint::XI_LOWER_BOUND);
}

#[test]
fn incremental_certificate_recomputes_dif() {
    let inst = instance();
    let mut old = Plan::for_instance(&inst);
    old.add(UserId(0), EventId(0));
    old.add(UserId(1), EventId(1));
    let mut new = Plan::for_instance(&inst);
    new.add(UserId(0), EventId(0));
    let cert = certify_incremental(&inst, &old, &new);
    assert_eq!(cert.dif, Some(1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On generated instances: the greedy plan certifies clean, and
    /// every systematic corruption is flagged with its precise name.
    #[test]
    fn corruptions_are_flagged_on_generated_instances(
        seed in 0u64..1_000,
        n_users in 4usize..16,
        n_events in 2usize..5,
    ) {
        let inst = generate(&GeneratorConfig {
            n_users,
            n_events,
            seed,
            ..Default::default()
        });
        let sol = GreedySolver::seeded(seed).solve(&inst);
        let base = certify(&inst, &sol.plan);
        prop_assert!(base.hard_ok(), "greedy plan failed certification: {base}");

        // η overflow: pile every user onto event 0 (η < n_users holds
        // for the generator's bounds at these sizes).
        let e0 = EventId(0);
        if inst.event(e0).upper < n_users as u32 {
            let mut plan = sol.plan.clone();
            for u in inst.user_ids() {
                plan.add(u, e0);
            }
            let cert = certify(&inst, &plan);
            prop_assert!(!cert.hard_ok());
            prop_assert!(
                cert.violated_constraints().contains(&constraint::ETA_UPPER_BOUND),
                "got {:?}", cert.violated_constraints()
            );
        }

        // Duplicate assignment via the serde loader: rebuild the plan
        // JSON by hand with one user's first event doubled.
        let mut assignments: Vec<Vec<usize>> = (0..inst.n_users())
            .map(|u| {
                sol.plan
                    .user_plan(UserId(u as u32))
                    .iter()
                    .map(|e| e.index())
                    .collect()
            })
            .collect();
        let victim = assignments.iter().position(|evs| !evs.is_empty());
        if let Some(u) = victim {
            let first = assignments[u][0];
            assignments[u].push(first);
            let mut attendance = vec![0u32; inst.n_events()];
            for evs in &assignments {
                for &e in evs {
                    attendance[e] += 1;
                }
            }
            let rows: Vec<String> = assignments
                .iter()
                .map(|evs| {
                    let inner: Vec<String> = evs.iter().map(|e| e.to_string()).collect();
                    format!("[{}]", inner.join(","))
                })
                .collect();
            let att: Vec<String> = attendance.iter().map(|a| a.to_string()).collect();
            let json = format!(
                r#"{{"assignments":[{}],"attendance":[{}]}}"#,
                rows.join(","),
                att.join(",")
            );
            let plan = plan_from_json(&json);
            let cert = certify(&inst, &plan);
            prop_assert!(!cert.hard_ok());
            prop_assert!(
                cert.violated_constraints().contains(&constraint::DUPLICATE_ASSIGNMENT),
                "got {:?}", cert.violated_constraints()
            );
        }
    }
}
