//! Quickstart: solve the paper's running example (Example 1) with all
//! three solvers and inspect the plans.
//!
//! Run with: `cargo run --example quickstart`

use epplan::prelude::*;

fn print_solution(instance: &Instance, name: &str, solution: &Solution) {
    println!("\n--- {name} ---");
    println!("global utility: {:.2}", solution.utility);
    println!(
        "fully feasible: {} (lower-bound shortfalls: {:?})",
        solution.fully_feasible(),
        solution.shortfall
    );
    for u in instance.user_ids() {
        let events = solution.plan.user_plan(u);
        let cost = solution.plan.travel_cost(instance, u);
        let names: Vec<String> = events.iter().map(|e| e.to_string()).collect();
        println!(
            "  {u}: attends [{}], travel cost {:.2} / budget {:.0}",
            names.join(", "),
            cost,
            instance.user(u).budget
        );
    }
}

fn main() {
    // The 5-user / 4-event EBSN of the paper's Example 1 (Fig. 1 +
    // Table I): four events with participation bounds, two time
    // conflicts (e1/e3 overlap, e2/e4 are back-to-back).
    let instance = epplan::datagen::paper_example();

    println!("users: {}, events: {}", instance.n_users(), instance.n_events());
    for e in instance.event_ids() {
        let ev = instance.event(e);
        println!(
            "  {e}: xi={}, eta={}, time {}",
            ev.lower, ev.upper, ev.time
        );
    }

    // The exact optimum (small instances only) — the paper's Example 2
    // plan reaches global utility 6.3, which is optimal here.
    let exact = ExactSolver::default().solve(&instance);
    print_solution(&instance, "exact optimum", &exact);

    // The GAP-based approximation (Section III-A): LP relaxation of
    // the event-copy reduction + Shmoys–Tardos rounding + conflict
    // adjusting.
    let gap = GapBasedSolver::default().solve(&instance);
    print_solution(&instance, "GAP-based algorithm", &gap);

    // The greedy approximation (Section III-B, Algorithm 2).
    let greedy = GreedySolver::seeded(42).solve(&instance);
    print_solution(&instance, "greedy algorithm", &greedy);

    // Every solver's plan respects all hard constraints.
    for (name, sol) in [("exact", &exact), ("gap", &gap), ("greedy", &greedy)] {
        let v = sol.plan.validate(&instance);
        assert!(v.hard_ok(), "{name} produced violations: {:?}", v.violations);
    }
    println!("\nall plans validate.");

    // The "Plan for Today" a user would actually see:
    println!();
    for it in epplan::core::plan::all_itineraries(&instance, &exact.plan) {
        println!("{it}\n");
    }
}
