//! Festival scheduling: why participation lower bounds matter.
//!
//! A festival day has workshops that are only viable above a minimum
//! head-count (the paper's "Seminar on Healthy Living" motivation).
//! This example constructs a situation where classic GEP planning —
//! which ignores lower bounds — maximizes *nominal* utility but leaves
//! a workshop below break-even, so it gets cancelled and its
//! participants' utility evaporates. GEPC planning pulls enough users
//! to meet the minimum and ends up with strictly more *realized*
//! utility.
//!
//! Run with: `cargo run --example festival_scheduler`

use epplan::core::model::{Event, TimeInterval, User, UtilityMatrix};
use epplan::geo::Point;
use epplan::prelude::*;

const NAMES: [&str; 4] = [
    "sunrise yoga",
    "fermentation lab",
    "wood carving",
    "evening jam session",
];

fn build_festival() -> Instance {
    // 12 attendees in a compact festival ground; walking budgets are
    // ample so the tension is purely about conflicts and head-counts.
    let users: Vec<User> = (0..12)
        .map(|u| User::new(Point::new((u % 4) as f64, (u / 4) as f64), 50.0))
        .collect();

    let h = |hh: u32, mm: u32| hh * 60 + mm;
    let events = vec![
        // yoga: early, independent, needs 3.
        Event::new(Point::new(1.0, 1.0), 3, 12, TimeInterval::new(h(7, 0), h(8, 0))),
        // fermentation lab: the crowd favorite, capacity 8, no minimum.
        Event::new(Point::new(2.0, 1.0), 0, 8, TimeInterval::new(h(12, 0), h(14, 0))),
        // wood carving: overlaps the lab and needs 6 to break even.
        Event::new(Point::new(1.0, 2.0), 6, 10, TimeInterval::new(h(12, 30), h(14, 30))),
        // jam session: evening, independent, needs 4.
        Event::new(Point::new(2.0, 2.0), 4, 12, TimeInterval::new(h(18, 0), h(21, 0))),
    ];

    // Everyone likes yoga and the jam a bit; the lab is loved by all;
    // carving is a second choice for everyone.
    let mut utilities = UtilityMatrix::zeros(12, 4);
    for u in 0..12u32 {
        utilities.set(UserId(u), EventId(0), 0.4);
        utilities.set(UserId(u), EventId(1), if u < 8 { 0.9 } else { 0.8 });
        utilities.set(UserId(u), EventId(2), if u < 8 { 0.5 } else { 0.6 });
        utilities.set(UserId(u), EventId(3), 0.45);
    }
    Instance::new(users, events, utilities).unwrap()
}

/// Utility that actually materializes: assignments to events below
/// their break-even head-count are cancelled and count zero.
fn realized_utility(instance: &Instance, plan: &epplan::core::plan::Plan) -> (f64, Vec<usize>) {
    let mut total = 0.0;
    let mut cancelled = Vec::new();
    for e in instance.event_ids() {
        let viable = plan.attendance(e) >= instance.event(e).lower;
        if !viable {
            cancelled.push(e.index());
            continue;
        }
        for u in plan.attendees(e) {
            total += instance.utility(u, e);
        }
    }
    (total, cancelled)
}

fn report(instance: &Instance, label: &str, plan: &epplan::core::plan::Plan) {
    let (realized, cancelled) = realized_utility(instance, plan);
    println!("\n=== {label} ===");
    println!("nominal utility : {:.2}", plan.total_utility(instance));
    println!("realized utility: {realized:.2}");
    for e in instance.event_ids() {
        let n = plan.attendance(e);
        let ev = instance.event(e);
        let status = if n >= ev.lower { "viable" } else { "CANCELLED" };
        println!(
            "  {:<20} {n:>2}/{:<2} signed up (break-even {:>2}) → {status}",
            NAMES[e.index()],
            ev.upper,
            ev.lower,
        );
    }
    if !cancelled.is_empty() {
        println!(
            "  cancelled: {:?} — their participants go home empty-handed",
            cancelled.iter().map(|&e| NAMES[e]).collect::<Vec<_>>()
        );
    }
}

fn main() {
    let instance = build_festival();

    // --- GEP: lower bounds ignored (simulated by zeroing every ξ) ---
    let mut gep_instance = instance.clone();
    for e in gep_instance.event_ids() {
        let upper = gep_instance.event(e).upper;
        gep_instance.set_event_bounds(e, 0, upper);
    }
    let gep = GreedySolver::seeded(5).solve(&gep_instance);
    report(&instance, "GEP (minimums ignored at planning time)", &gep.plan);

    // --- GEPC: lower bounds enforced -------------------------------
    let gepc = GreedySolver::seeded(5).solve(&instance);
    report(&instance, "GEPC (minimums planned for)", &gepc.plan);
    assert!(gepc.plan.validate(&instance).hard_ok());

    let (gep_real, _) = realized_utility(&instance, &gep.plan);
    let (gepc_real, _) = realized_utility(&instance, &gepc.plan);
    println!(
        "\nGEPC realizes {:.2} vs GEP's {:.2} — planning for minimums pays off.",
        gepc_real, gep_real
    );
    assert!(
        gepc_real > gep_real,
        "scenario should demonstrate the GEPC advantage"
    );
}
