//! Incremental planning over a stream of changes: the IEP problem in
//! action. A day of EBSN operation is simulated — organizers shrink
//! venues, raise minimum head-counts, move time slots, post new
//! events; users lose interest and budgets. After each atomic change
//! the plan is repaired incrementally, and the result is compared with
//! re-solving from scratch (the paper's Re-Greedy baseline).
//!
//! Run with: `cargo run --release --example dynamic_day`

use epplan::core::incremental::IncrementalPlanner;
use epplan::core::model::{Event, TimeInterval};
use epplan::datagen::{generate, GeneratorConfig};
use epplan::prelude::*;
use std::time::Instant;

fn main() {
    let cfg = GeneratorConfig {
        n_users: 400,
        n_events: 25,
        seed: 2024,
        mean_lower: 5,
        mean_upper: 20,
        ..Default::default()
    };
    let mut instance = generate(&cfg);
    let solver = GreedySolver::seeded(3);
    let mut plan = solver.solve(&instance).plan;
    println!(
        "initial plan: utility {:.1}, {} assignments",
        plan.total_utility(&instance),
        plan.total_assignments()
    );

    // A plausible stream of atomic operations.
    let busiest = instance
        .event_ids()
        .max_by_key(|&e| plan.attendance(e))
        .expect("events exist");
    let moved = EventId(3.min(instance.n_events() as u32 - 1));
    let t = instance.event(moved).time;
    let ops: Vec<(&str, AtomicOp)> = vec![
        (
            "venue shrinks: busiest event halves its capacity",
            AtomicOp::EtaDecrease {
                event: busiest,
                new_upper: (plan.attendance(busiest) / 2).max(1),
            },
        ),
        (
            "organizer needs more heads to cover costs",
            AtomicOp::XiIncrease {
                event: EventId(1),
                new_lower: (plan.attendance(EventId(1)) + 2)
                    .min(instance.event(EventId(1)).upper),
            },
        ),
        (
            "venue double-booked: event moves two hours later",
            AtomicOp::TimeChange {
                event: moved,
                new_time: TimeInterval::new(t.start + 120, t.end + 120),
            },
        ),
        (
            "a new pop-up event is announced",
            AtomicOp::NewEvent {
                event: Event::new(
                    epplan::geo::Point::new(50.0, 50.0),
                    3,
                    30,
                    TimeInterval::new(21 * 60, 23 * 60),
                ),
                utilities: (0..instance.n_users())
                    .map(|u| if u % 3 == 0 { 0.6 } else { 0.0 })
                    .collect(),
            },
        ),
        (
            "storm warning: user 7 cuts their travel budget",
            AtomicOp::BudgetChange {
                user: UserId(7),
                new_budget: instance.user(UserId(7)).budget / 4.0,
            },
        ),
    ];

    let planner = IncrementalPlanner;
    for (label, op) in ops {
        let t0 = Instant::now();
        let outcome = planner.apply(&instance, &plan, &op);
        let inc_time = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let rerun = solver.solve(&outcome.instance);
        let rerun_time = t1.elapsed().as_secs_f64();

        println!("\n>> {label}");
        println!(
            "   incremental: utility {:.1}, dif {}, {:.4}s",
            outcome.utility, outcome.dif, inc_time
        );
        println!(
            "   re-solve:    utility {:.1}, dif {}, {:.4}s  ({}x slower)",
            rerun.utility,
            epplan::core::plan::dif(&plan, &rerun.plan),
            rerun_time,
            (rerun_time / inc_time.max(1e-9)).round()
        );
        assert!(outcome.plan.validate(&outcome.instance).hard_ok());

        instance = outcome.instance;
        plan = outcome.plan;
    }

    println!(
        "\nend of scripted day: utility {:.1}, {} assignments",
        plan.total_utility(&instance),
        plan.total_assignments()
    );

    // --- Stress phase: a whole week of random churn ------------------
    // `OpStreamSampler` draws a realistic mix of atomic operations
    // (budget/utility churn dominating, occasional organizer changes
    // and new events), each consistent with the evolving state.
    let mut sampler = epplan::datagen::OpStreamSampler::new(7);
    let ops = sampler.stream(&instance, &plan, 100);
    let t0 = Instant::now();
    let outcome = planner.apply_batch(&instance, &plan, &ops);
    println!(
        "\nstress phase: {} random operations in {:.3}s",
        ops.len(),
        t0.elapsed().as_secs_f64()
    );
    println!(
        "  net dif {} (sum of per-op difs: {})",
        outcome.net_dif,
        outcome.step_difs.iter().sum::<usize>()
    );
    println!(
        "  final utility {:.1}, {} events below their minimum",
        outcome.utility,
        outcome.shortfall.len()
    );
    assert!(outcome.plan.validate(&outcome.instance).hard_ok());
    println!("  plan still satisfies every hard constraint.");
}
