//! City-scale planning: generate a synthetic Meetup-like city, solve
//! the GEPC problem with both approximation algorithms, and report the
//! quality/efficiency trade-off plus the paper's theoretical bounds.
//!
//! Run with: `cargo run --release --example city_planning`

use epplan::core::analysis::InstanceAnalysis;
use epplan::datagen::City;
use epplan::prelude::*;
use std::time::Instant;

fn main() {
    // The synthetic stand-in for the paper's Auckland dataset
    // (569 users, 37 events — Table IV).
    let city = City::Auckland;
    let instance = city.instance();
    println!(
        "{}: {} users, {} events, conflict ratio {:.2}",
        city,
        instance.n_users(),
        instance.n_events(),
        epplan::datagen::conflict_ratio(&instance)
    );

    // The reachability analysis behind the approximation ratios:
    // Uc_i = events within B_i/2 of user i.
    let analysis = InstanceAnalysis::of(&instance);
    println!(
        "Uc_max = {} → theoretical ratios: GAP ≥ 1/{}, greedy ≥ 1/{}",
        analysis.uc_max,
        analysis.uc_max.saturating_sub(1),
        2 * analysis.uc_max,
    );

    for (name, solver) in [
        ("greedy", Box::new(GreedySolver::seeded(1)) as Box<dyn GepcSolver>),
        ("gap", Box::new(GapBasedSolver::default())),
    ] {
        let start = Instant::now();
        let sol = solver.solve(&instance);
        let secs = start.elapsed().as_secs_f64();
        let v = sol.plan.validate(&instance);
        assert!(v.hard_ok());

        let attending: usize = instance
            .user_ids()
            .filter(|&u| !sol.plan.user_plan(u).is_empty())
            .count();
        let held = instance
            .event_ids()
            .filter(|&e| sol.plan.attendance(e) >= instance.event(e).lower)
            .count();
        println!("\n=== {name} ({secs:.3}s) ===");
        println!("global utility: {:.1}", sol.utility);
        println!(
            "events meeting their lower bound: {held}/{} (shortfalls: {})",
            instance.n_events(),
            sol.shortfall.len()
        );
        println!(
            "users with a non-empty plan: {attending}/{}",
            instance.n_users()
        );
        let busiest = instance
            .event_ids()
            .max_by_key(|&e| sol.plan.attendance(e))
            .expect("events exist");
        println!(
            "busiest event: {busiest} with {}/{} participants",
            sol.plan.attendance(busiest),
            instance.event(busiest).upper
        );
    }
}
