//! Hermetic, dependency-free stand-in for `criterion` (the API subset
//! this workspace's benches use).
//!
//! Runs each benchmark body a small fixed number of iterations and
//! prints a rough mean wall-clock time — enough to keep `cargo bench`
//! compiling and executing offline, without criterion's statistics.


// Hermetic offline stand-in for the real crate; kept simple, not lint-clean.
#![allow(clippy::all)]
use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmark result.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iterations: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.iterations, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            iterations: self.iterations,
            _parent: self,
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iterations: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iterations = (n as u64).max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.iterations, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), self.iterations, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier (`BenchmarkId::from_parameter(...)` etc.).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Throughput marker, accepted and ignored.
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timer handed to each benchmark body.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, iterations: u64, mut f: F) {
    let mut b = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.checked_div(iterations.max(1) as u32);
    println!(
        "bench {id}: {:?}/iter over {} iters",
        per_iter.unwrap_or_default(),
        iterations
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
