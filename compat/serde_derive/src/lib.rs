//! `#[derive(Serialize, Deserialize)]` for the in-repo serde shim.
//!
//! Implemented with hand-rolled token parsing (no `syn`/`quote`; the
//! build container cannot fetch them). Supports exactly the shapes
//! this workspace uses:
//!
//! - named-field structs (with `#[serde(default)]` fields),
//! - one-field tuple ("newtype") structs, serialized transparently,
//! - externally tagged enums with unit and struct variants,
//! - internally tagged enums (`#[serde(tag = "...")]`) with
//!   `rename_all = "snake_case"`.
//!
//! Anything else (generics, tuple variants, skipped fields) is
//! rejected with a compile error rather than silently mis-serialized.


// Hermetic offline stand-in for the real crate; kept simple, not lint-clean.
#![allow(clippy::all)]
use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    /// `None` for unit variants.
    fields: Option<Vec<Field>>,
}

enum Kind {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    kind: Kind,
    /// `#[serde(tag = "...")]` → internally tagged enum.
    tag: Option<String>,
    /// `#[serde(rename_all = "...")]`.
    rename_all: Option<String>,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_serialize(&container).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_deserialize(&container).parse().expect("generated Deserialize impl parses")
}

// ---- parsing ----

fn parse_container(input: TokenStream) -> Container {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut tag = None;
    let mut rename_all = None;

    // Attributes and visibility precede the struct/enum keyword.
    let keyword = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    scan_serde_attr(g, |key, value| match key {
                        "tag" => tag = value.map(str::to_string),
                        "rename_all" => rename_all = value.map(str::to_string),
                        _ => {}
                    });
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: no struct/enum found in derive input"),
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic types ({name})");
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g.clone(),
        other => panic!("serde_derive: expected body of {name}, got {other:?}"),
    };

    let kind = if keyword == "struct" {
        match body.delimiter() {
            Delimiter::Brace => Kind::NamedStruct(parse_named_fields(&body)),
            Delimiter::Parenthesis => {
                let arity = count_top_level_fields(&body);
                if arity != 1 {
                    panic!("serde_derive shim supports only 1-field tuple structs ({name} has {arity})");
                }
                Kind::NewtypeStruct
            }
            _ => panic!("serde_derive: unexpected struct body for {name}"),
        }
    } else {
        Kind::Enum(parse_variants(&body, &name))
    };

    Container { name, kind, tag, rename_all }
}

/// If the bracketed attribute group is `[serde(...)]`, invoke `f` for
/// each `key` or `key = "value"` item inside.
fn scan_serde_attr(group: &Group, mut f: impl FnMut(&str, Option<&str>)) {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else {
        return;
    };
    let toks: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < toks.len() {
        let TokenTree::Ident(key) = &toks[j] else {
            j += 1;
            continue;
        };
        let key = key.to_string();
        if matches!(toks.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            if let Some(TokenTree::Literal(lit)) = toks.get(j + 2) {
                let raw = lit.to_string();
                f(&key, Some(raw.trim_matches('"')));
            }
            j += 3;
        } else {
            f(&key, None);
            j += 1;
        }
        // Skip the separating comma, if any.
        if matches!(toks.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            j += 1;
        }
    }
}

fn parse_named_fields(group: &Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut default = false;
        // Field attributes (doc comments, #[serde(default)], ...).
        while matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                scan_serde_attr(g, |key, _| {
                    if key == "default" {
                        default = true;
                    } else if key == "skip" || key == "rename" || key == "flatten" {
                        panic!("serde_derive shim does not support #[serde({key})] on fields");
                    }
                });
            }
            i += 2;
        }
        if matches!(toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        // Expect and skip `:`, then the type, up to a top-level comma.
        // Only `<`/`>` need depth tracking: parenthesized/bracketed
        // type components arrive as atomic groups.
        i += 1;
        let mut angle_depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                },
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn count_top_level_fields(group: &Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut commas = 0;
    let mut trailing_comma = false;
    for t in &toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    commas + usize::from(!trailing_comma)
}

fn parse_variants(group: &Group, container: &str) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2; // variant attributes: only docs appear in this workspace
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name in {container}, got {other:?}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g);
                i += 1;
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim does not support tuple variants ({container}::{name})");
            }
            _ => None,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---- renaming ----

fn to_snake(s: &str) -> String {
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if ch.is_uppercase() {
            if i != 0 {
                out.push('_');
            }
            out.extend(ch.to_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn rename(name: &str, rule: Option<&str>) -> String {
    match rule {
        Some("snake_case") => to_snake(name),
        Some("lowercase") => name.to_lowercase(),
        Some("UPPERCASE") => name.to_uppercase(),
        Some(other) => panic!("serde_derive shim: unsupported rename_all = {other:?}"),
        None => name.to_string(),
    }
}

// ---- codegen ----

const ALLOWS: &str = "#[automatically_derived]\n#[allow(unused_mut, unused_variables, unreachable_patterns, clippy::all)]\n";

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut __m: Vec<(String, ::serde::Content)> = Vec::new();\n",
            );
            for f in fields {
                let key = rename(&f.name, c.rename_all.as_deref());
                s.push_str(&format!(
                    "__m.push((\"{key}\".to_string(), ::serde::Serialize::to_content(&self.{})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Content::Map(__m)\n");
            s
        }
        Kind::NewtypeStruct => "::serde::Serialize::to_content(&self.0)\n".to_string(),
        Kind::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vname = rename(&v.name, c.rename_all.as_deref());
                match (&v.fields, &c.tag) {
                    (None, None) => {
                        s.push_str(&format!(
                            "{name}::{} => ::serde::Content::Str(\"{vname}\".to_string()),\n",
                            v.name
                        ));
                    }
                    (None, Some(tag)) => {
                        s.push_str(&format!(
                            "{name}::{} => ::serde::Content::Map(vec![(\"{tag}\".to_string(), ::serde::Content::Str(\"{vname}\".to_string()))]),\n",
                            v.name
                        ));
                    }
                    (Some(fields), tag) => {
                        let pat: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        s.push_str(&format!(
                            "{name}::{} {{ {} }} => {{\n",
                            v.name,
                            pat.join(", ")
                        ));
                        s.push_str(
                            "let mut __f: Vec<(String, ::serde::Content)> = Vec::new();\n",
                        );
                        if let Some(tag) = tag {
                            s.push_str(&format!(
                                "__f.push((\"{tag}\".to_string(), ::serde::Content::Str(\"{vname}\".to_string())));\n"
                            ));
                        }
                        for f in fields {
                            s.push_str(&format!(
                                "__f.push((\"{0}\".to_string(), ::serde::Serialize::to_content({0})));\n",
                                f.name
                            ));
                        }
                        if tag.is_some() {
                            s.push_str("::serde::Content::Map(__f)\n");
                        } else {
                            s.push_str(&format!(
                                "::serde::Content::Map(vec![(\"{vname}\".to_string(), ::serde::Content::Map(__f))])\n"
                            ));
                        }
                        s.push_str("}\n");
                    }
                }
            }
            s.push_str("}\n");
            s
        }
    };
    format!(
        "{ALLOWS}impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}}}\n}}\n"
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.kind {
        Kind::NamedStruct(fields) => {
            let mut s = format!(
                "let __m = __c.as_map().ok_or_else(|| ::serde::DeError::new(\"expected map for `{name}`\"))?;\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                let key = rename(&f.name, c.rename_all.as_deref());
                let getter = if f.default { "__field_or_default" } else { "__field" };
                s.push_str(&format!(
                    "{}: ::serde::{getter}(__m, \"{key}\")?,\n",
                    f.name
                ));
            }
            s.push_str("})\n");
            s
        }
        Kind::NewtypeStruct => {
            format!("Ok({name}(::serde::Deserialize::from_content(__c)?))\n")
        }
        Kind::Enum(variants) => match &c.tag {
            Some(tag) => gen_de_internal_enum(name, variants, tag, c.rename_all.as_deref()),
            None => gen_de_external_enum(name, variants, c.rename_all.as_deref()),
        },
    };
    format!(
        "{ALLOWS}impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}}}\n}}\n"
    )
}

fn gen_variant_constructor(name: &str, v: &Variant, map: &str) -> String {
    match &v.fields {
        None => format!("Ok({name}::{})", v.name),
        Some(fields) => {
            let mut s = format!("Ok({name}::{} {{ ", v.name);
            for f in fields {
                let getter = if f.default { "__field_or_default" } else { "__field" };
                s.push_str(&format!("{0}: ::serde::{getter}({map}, \"{0}\")?, ", f.name));
            }
            s.push_str("})");
            s
        }
    }
}

fn gen_de_internal_enum(
    name: &str,
    variants: &[Variant],
    tag: &str,
    rule: Option<&str>,
) -> String {
    let mut s = format!(
        "let __m = __c.as_map().ok_or_else(|| ::serde::DeError::new(\"expected map for `{name}`\"))?;\n\
         let __t = ::serde::__get(__m, \"{tag}\").and_then(::serde::Content::as_str).ok_or_else(|| ::serde::DeError::new(\"missing tag `{tag}` for `{name}`\"))?;\n\
         match __t {{\n"
    );
    for v in variants {
        let vname = rename(&v.name, rule);
        s.push_str(&format!(
            "\"{vname}\" => {},\n",
            gen_variant_constructor(name, v, "__m")
        ));
    }
    s.push_str(&format!(
        "__other => Err(::serde::DeError::new(format!(\"unknown `{tag}` variant `{{__other}}` for `{name}`\"))),\n}}\n"
    ));
    s
}

fn gen_de_external_enum(name: &str, variants: &[Variant], rule: Option<&str>) -> String {
    let mut s = String::from("if let Some(__s) = __c.as_str() {\nreturn match __s {\n");
    for v in variants.iter().filter(|v| v.fields.is_none()) {
        let vname = rename(&v.name, rule);
        s.push_str(&format!("\"{vname}\" => Ok({name}::{}),\n", v.name));
    }
    s.push_str(&format!(
        "__other => Err(::serde::DeError::new(format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n}};\n}}\n"
    ));
    s.push_str(
        "if let Some(__outer) = __c.as_map() {\nif __outer.len() == 1 {\nlet (__k, __v) = (&__outer[0].0, &__outer[0].1);\nreturn match __k.as_str() {\n",
    );
    for v in variants.iter().filter(|v| v.fields.is_some()) {
        let vname = rename(&v.name, rule);
        s.push_str(&format!(
            "\"{vname}\" => {{\nlet __m = __v.as_map().ok_or_else(|| ::serde::DeError::new(\"expected map for `{name}::{}`\"))?;\n{}\n}},\n",
            v.name,
            gen_variant_constructor(name, v, "__m")
        ));
    }
    s.push_str(&format!(
        "__other => Err(::serde::DeError::new(format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n}};\n}}\n}}\n"
    ));
    s.push_str(&format!(
        "Err(::serde::DeError::new(\"cannot deserialize `{name}`: expected string or single-key map\"))\n"
    ));
    s
}
