//! Hermetic, dependency-free stand-in for `serde` (the subset this
//! workspace uses: `derive(Serialize, Deserialize)` on plain structs,
//! newtype ids, and externally/internally tagged enums, driven by the
//! sibling `serde_json` shim).
//!
//! Instead of serde's visitor architecture, values round-trip through a
//! simple self-describing [`Content`] tree: `Serialize` lowers a value
//! to `Content`, `Deserialize` lifts it back. That is exactly enough
//! for JSON persistence of instances, plans, configs and op streams.


// Hermetic offline stand-in for the real crate; kept simple, not lint-clean.
#![allow(clippy::all)]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree, the meeting point of serialization
/// and deserialization (serde's data model, flattened).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key–value pairs in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric coercion: JSON has one number type, so integers parse
    /// as `I64`/`U64` but still deserialize into `f64` fields.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(f) => Some(*f),
            Content::I64(i) => Some(*i as f64),
            Content::U64(u) => Some(*u as f64),
            // Non-finite floats serialize as `null`; lift them back as
            // NaN so robustness tests can round-trip degenerate data.
            Content::Null => Some(f64::NAN),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(u) => Some(*u),
            Content::I64(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(i) => Some(*i),
            Content::U64(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable message naming what was
/// expected and where it went wrong.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Lower a value into the [`Content`] data model.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Lift a value back out of the [`Content`] data model.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---- helpers the derive macro expands calls to ----

/// First value under `key`, if present.
pub fn __get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Required struct field.
pub fn __field<T: Deserialize>(map: &[(String, Content)], key: &str) -> Result<T, DeError> {
    match __get(map, key) {
        Some(v) => T::from_content(v),
        None => Err(DeError::new(format!("missing field `{key}`"))),
    }
}

/// `#[serde(default)]` struct field.
pub fn __field_or_default<T: Deserialize + Default>(
    map: &[(String, Content)],
    key: &str,
) -> Result<T, DeError> {
    match __get(map, key) {
        Some(v) => T::from_content(v),
        None => Ok(T::default()),
    }
}

// ---- primitive impls ----

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let u = c
                    .as_u64()
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| {
                    DeError::new(format!(concat!("{} out of range for ", stringify!($t)), u))
                })
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let i = c
                    .as_i64()
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| {
                    DeError::new(format!(concat!("{} out of range for ", stringify!($t)), i))
                })
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_f64().ok_or_else(|| DeError::new("expected number"))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(f64::from_content(c)? as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let seq = c.as_seq().ok_or_else(|| DeError::new("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(DeError::new(format!(
                        "expected tuple of {expected}, got {}",
                        seq.len()
                    )));
                }
                Ok(($($name::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::from_content(&Content::I64(-3)).unwrap(), -3.0);
        assert_eq!(f64::from_content(&Content::U64(7)).unwrap(), 7.0);
        assert!(f64::from_content(&Content::Null).unwrap().is_nan());
        assert_eq!(u32::from_content(&Content::I64(5)).unwrap(), 5);
        assert!(u32::from_content(&Content::I64(-1)).is_err());
        assert!(u8::from_content(&Content::U64(300)).is_err());
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let v = vec![1u32, 2, 3];
        let c = v.to_content();
        assert_eq!(Vec::<u32>::from_content(&c).unwrap(), v);

        let t = (2usize, 6usize);
        let c = t.to_content();
        assert_eq!(<(usize, usize)>::from_content(&c).unwrap(), t);
        assert!(<(usize, usize)>::from_content(&Content::Seq(vec![Content::U64(1)])).is_err());
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_content(&Content::U64(4)).unwrap(),
            Some(4)
        );
        assert_eq!(Some(4u32).to_content(), Content::U64(4));
        assert_eq!(Option::<u32>::None.to_content(), Content::Null);
    }

    #[test]
    fn field_helpers() {
        let map = vec![("a".to_string(), Content::U64(1))];
        assert_eq!(__field::<u32>(&map, "a").unwrap(), 1);
        assert!(__field::<u32>(&map, "b").is_err());
        assert_eq!(__field_or_default::<f64>(&map, "b").unwrap(), 0.0);
    }
}
