//! Sequence helpers (`rand::seq` subset).

use crate::{RngCore, SampleRange};

/// Slice extensions; only `shuffle` (and `choose`) are provided.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = SampleRange::sample_single(0..=i, &mut *rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(SampleRange::sample_single(0..self.len(), &mut *rng))
        }
    }
}
