//! Hermetic, dependency-free stand-in for the `rand` crate (the 0.8
//! API subset this workspace uses).
//!
//! The build container has no registry access, so the workspace's
//! `[patch.crates-io]` table points `rand` at this shim. It provides
//! [`RngCore`], [`Rng`] (with `gen_range`/`gen_bool`), [`SeedableRng`],
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64) and
//! [`seq::SliceRandom::shuffle`]. Deterministic for a fixed seed, which
//! is all the workspace's generators and tests rely on; it makes no
//! claim of statistical quality beyond that.


// Hermetic offline stand-in for the real crate; kept simple, not lint-clean.
#![allow(clippy::all)]
pub mod rngs;
pub mod seq;

/// One-stop imports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (including `&mut dyn RngCore`).
pub trait Rng: RngCore {
    /// Uniform sample from a `Range`/`RangeInclusive`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 53 high bits to a float in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types [`Rng::gen_range`] can sample. Mirrors rand's
/// `SampleUniform`; like upstream, the single blanket
/// [`SampleRange`] impl per range shape keeps integer-literal
/// inference working (`n + rng.gen_range(1..=3)`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, &mut &mut *rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, &mut &mut *rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self {
                let (lo, hi) = (lo as i128, hi as i128);
                let span = if inclusive { hi - lo + 1 } else { hi - lo };
                assert!(span > 0, "cannot sample empty range");
                let r = (rng.next_u64() as u128) % span as u128;
                (lo + r as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(1.0..=2.0f64);
            assert!((1.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn dyn_rng_core_supports_gen_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0..10usize);
        assert!(x < 10);
        assert!(!((0..100).all(|_| dyn_rng.gen_bool(0.5))));
    }

    #[test]
    fn shuffle_permutes() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(5);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
