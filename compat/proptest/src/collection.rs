//! Collection strategies (`proptest::collection` subset).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Element-count specification for [`vec`]: an exact length, an
/// exclusive range, or an inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// `Vec` strategy: each element drawn from `element`, length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..=self.size.hi)
        };
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}
