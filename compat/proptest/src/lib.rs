//! Hermetic, dependency-free stand-in for `proptest` (the subset this
//! workspace uses).
//!
//! Differences from the real crate, by design: cases are generated
//! from a per-test deterministic seed, there is **no shrinking** (a
//! failing case panics with the assertion message), and
//! `.proptest-regressions` files are ignored. That preserves the
//! load-bearing property — every test body is exercised across many
//! pseudo-random inputs — without proptest's machinery.


// Hermetic offline stand-in for the real crate; kept simple, not lint-clean.
#![allow(clippy::all)]
#[doc(hidden)]
pub use rand as __rand;

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirrors the real prelude's `prop` module path
    /// (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Stable per-test seed (FNV-1a over the test name), so each property
/// test explores the same inputs on every run.
#[doc(hidden)]
pub fn __seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests: an optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header followed
/// by `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    $crate::__seed(stringify!($name)),
                );
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __cfg.cases.saturating_mul(16).max(64);
                while __accepted < __cfg.cases {
                    __attempts += 1;
                    if __attempts > __max_attempts {
                        panic!(
                            "proptest `{}`: too many rejected cases ({} accepted of {} wanted)",
                            stringify!($name), __accepted, __cfg.cases
                        );
                    }
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)+
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!("proptest `{}` failed: {}", stringify!($name), __msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l != *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Discards the current case unless `cond` holds (counts as neither
/// pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}
