//! Value-generation strategies (`proptest::strategy` subset, minus
//! shrinking).

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; gives up (panics) after
    /// 1000 consecutive rejections, like the real crate's filter cap.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.whence);
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Strategy for bool {
    type Value = bool;

    fn gen_value(&self, rng: &mut StdRng) -> bool {
        // `bool` as a strategy mirrors `any::<bool>()`: 50/50.
        let _ = self;
        rng.gen_bool(0.5)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
