//! Test-runner configuration and case outcomes
//! (`proptest::test_runner` subset).

/// Runner knobs; only `cases` is honored by the shim.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
    /// Accepted for source compatibility; unused by the shim.
    pub max_shrink_iters: u32,
}

impl Config {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*!` failed; the test fails.
    Fail(String),
}

/// Per-case result type used by the `proptest!` expansion.
pub type TestCaseResult = Result<(), TestCaseError>;
