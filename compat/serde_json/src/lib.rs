//! Hermetic, dependency-free stand-in for `serde_json` (the
//! `to_string` / `to_string_pretty` / `from_str` subset this workspace
//! uses), layered on the in-repo serde shim's [`serde::Content`] tree.
//!
//! Floats print via Rust's shortest-round-trip `Display` (with a
//! trailing `.0` for integral values), so every finite `f64`
//! round-trips bit-exactly — the property the real crate's
//! `float_roundtrip` feature guarantees. Non-finite floats serialize
//! as `null`.


// Hermetic offline stand-in for the real crate; kept simple, not lint-clean.
#![allow(clippy::all)]
use serde::{Content, Deserialize, Serialize};

/// Serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// `Result` alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_content(&content).map_err(|e| Error::new(e.to_string()))
}

// ---- printer ----

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(f) => write_f64(*f, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            write_bracketed(out, '[', ']', items.len(), indent, depth, |out, i, d| {
                write_content(&items[i], out, indent, d);
            });
        }
        Content::Map(entries) => {
            write_bracketed(out, '{', '}', entries.len(), indent, depth, |out, i, d| {
                write_escaped(&entries[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(&entries[i].1, out, indent, d);
            });
        }
    }
}

fn write_bracketed(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = f.to_string(); // shortest string that round-trips
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::new(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.eat_keyword("\\u") {
                                    let lo = self.parse_hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    0xFFFD
                                }
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // the byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = std::str::from_utf8(&rest[..ch_len])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(if i >= 0 {
                    Content::U64(i as u64)
                } else {
                    Content::I64(i)
                });
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&10.0f64).unwrap(), "10.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string("a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn float_roundtrips_exactly() {
        for &f in &[0.1, 1.0 / 3.0, 6.300, 1e-12, 123456.789, f64::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[],[3]]");
        let back: Vec<Vec<u32>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parses_objects_with_whitespace() {
        let c: Vec<(f64, f64)> = from_str(" [ [1, 2.5] , [3 , 4] ] ").unwrap();
        assert_eq!(c, vec![(1.0, 2.5), (3.0, 4.0)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("{not valid json").is_err());
        assert!(from_str::<bool>("true false").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
        assert!(from_str::<Vec<u32>>("").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s: String = from_str(r#""A\té☃""#).unwrap();
        assert_eq!(s, "A\té☃");
        let back = to_string(&s).unwrap();
        let again: String = from_str(&back).unwrap();
        assert_eq!(again, s);
    }
}
